package shard

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"

	"aigtimer/internal/aig"
	"aigtimer/internal/anneal"
	"aigtimer/internal/eval"
)

// testAIG builds a deterministic random AIG.
func testAIG(seed int64) *aig.AIG {
	rng := rand.New(rand.NewSource(seed))
	b := aig.NewBuilder(8)
	lits := make([]aig.Lit, 0, 120)
	for i := 0; i < 8; i++ {
		lits = append(lits, b.PI(i))
	}
	for len(lits) < 120 {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		c := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, b.And(a, c))
	}
	for i := 0; i < 4; i++ {
		b.AddPO(lits[len(lits)-1-rng.Intn(30)])
	}
	return b.Build().Compact()
}

// levelsEval is the proxy-style oracle the fake runner anneals with.
type levelsEval struct{}

func (levelsEval) Name() string { return "levels" }
func (levelsEval) Evaluate(g *aig.AIG) eval.Metrics {
	return eval.Metrics{DelayPS: float64(g.MaxLevel()) + 1, AreaUM2: float64(g.NumAnds()) + 1}
}

// fakeRunner is a flows-free Runner: real annealing runs over per-entry
// cached proxy oracles, with injectable failures and a connection-kill
// hook.
type fakeRunner struct {
	cfg    RunConfig
	caches []*eval.Cached
	warmed map[*aig.AIG]bool

	mu        sync.Mutex
	failTimes map[int]int // job index -> remaining injected failures
	killConn  io.Closer   // when set, closed before the killAfter-th Run returns
	killAfter int
	jobsRun   int
	cacheSeq  []int

	onRun       func(JobSpec) // when set, invoked at the start of every Run
	endSessions int           // EndSession call count
}

func newFakeRunner() *fakeRunner {
	return &fakeRunner{failTimes: map[int]int{}, warmed: map[*aig.AIG]bool{}}
}

func (r *fakeRunner) Configure(cfg RunConfig) error {
	caches := make([]*eval.Cached, len(cfg.Entries))
	for i := range caches {
		caches[i] = eval.NewCached(eval.AsOracle(levelsEval{}, 1))
	}
	r.mu.Lock()
	r.cfg = cfg
	r.caches = caches
	r.cacheSeq = make([]int, len(cfg.Entries))
	r.mu.Unlock()
	return nil
}

// cache returns entry's cache under the lock; Preseed runs on the
// serve loop's reader goroutine, concurrent with Run and EndSession.
func (r *fakeRunner) cache(entry int) *eval.Cached {
	r.mu.Lock()
	defer r.mu.Unlock()
	if entry < 0 || entry >= len(r.caches) {
		return nil
	}
	return r.caches[entry]
}

func (r *fakeRunner) Run(base *aig.AIG, job JobSpec) (*WorkResult, error) {
	r.mu.Lock()
	hook := r.onRun
	r.mu.Unlock()
	if hook != nil {
		hook(job)
	}
	r.mu.Lock()
	if n := r.failTimes[job.Index]; n > 0 {
		r.failTimes[job.Index] = n - 1
		r.mu.Unlock()
		return nil, fmt.Errorf("injected failure for job %d", job.Index)
	}
	r.jobsRun++
	kill := r.killConn != nil && r.jobsRun > r.killAfter
	r.mu.Unlock()
	if !r.warmed[base] {
		base.Levels()
		base.FanoutCounts()
		base.PairIndex()
		r.warmed[base] = true
	}
	p := r.cfg.Base
	p.DelayWeight, p.AreaWeight, p.DecayRate = job.DelayWeight, job.AreaWeight, job.Decay
	p.Seed = r.cfg.Base.Seed + job.SeedOffset
	res, err := anneal.Run(base, r.cache(job.Entry), p)
	if err != nil {
		return nil, err
	}
	if kill {
		r.killConn.Close() // simulate the worker process dying mid-job
	}
	m := levelsEval{}.Evaluate(res.Best)
	return &WorkResult{Result: res, TrueDelayPS: m.DelayPS, TrueAreaUM2: m.AreaUM2}, nil
}

func (r *fakeRunner) CacheSnapshot(entry int) []eval.CacheRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if entry < 0 || entry >= len(r.caches) {
		return nil
	}
	recs, seq := r.caches[entry].ExportSince(r.cacheSeq[entry])
	r.cacheSeq[entry] = seq
	return recs
}

func (r *fakeRunner) Preseed(entry int, recs []eval.CacheRecord) {
	if c := r.cache(entry); c != nil {
		c.ImportRecords(recs)
	}
}

func (r *fakeRunner) EndSession() {
	r.mu.Lock()
	r.endSessions++
	r.caches = nil
	r.cacheSeq = nil
	r.mu.Unlock()
	r.warmed = map[*aig.AIG]bool{}
}

func (r *fakeRunner) CacheStats() eval.CacheStats {
	r.mu.Lock()
	caches := r.caches
	r.mu.Unlock()
	var s eval.CacheStats
	for _, c := range caches {
		cs := c.Stats()
		s.Hits += cs.Hits
		s.Misses += cs.Misses
		s.Entries += cs.Entries
		s.Preseeded += cs.Preseeded
		s.PrefilterHits += cs.PrefilterHits
		s.PrefilterRejected += cs.PrefilterRejected
	}
	return s
}

// testConfig is the shared sweep configuration of these tests: one
// entry over base 0.
func testConfig() RunConfig {
	return RunConfig{
		Base: anneal.Params{
			Iterations: 8, StartTemp: 0.05, DecayRate: 0.95, Seed: 5,
			BatchSize: 4, Chains: 2,
		},
		Entries: []EntrySpec{{Base: 0, Eval: EvalSpec{Kind: "baseline"}}},
	}
}

func testJobs(n int) []JobSpec {
	jobs := make([]JobSpec, n)
	for i := range jobs {
		jobs[i] = JobSpec{
			Entry:       0,
			Index:       i,
			DelayWeight: 1,
			AreaWeight:  0.2 * float64(i),
			Decay:       0.95,
			SeedOffset:  int64(i),
		}
	}
	return jobs
}

// reference computes the expected results by running every job locally
// through an identically configured runner.
func reference(t *testing.T, base *aig.AIG, cfg RunConfig, jobs []JobSpec) []*WorkResult {
	t.Helper()
	r := newFakeRunner()
	if err := r.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	out := make([]*WorkResult, len(jobs))
	for i, j := range jobs {
		wr, err := r.Run(base, j)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = wr
	}
	return out
}

// sameResult compares the deterministic payload of two annealing
// results (graphs, metrics, trajectory); timing and cache counters are
// schedule-dependent by design and excluded.
func sameResult(a, b *anneal.Result) error {
	if a.BestCost != b.BestCost || a.BestMetrics != b.BestMetrics || a.Initial != b.Initial {
		return fmt.Errorf("headline metrics differ: (%v %v %v) vs (%v %v %v)",
			a.BestCost, a.BestMetrics, a.Initial, b.BestCost, b.BestMetrics, b.Initial)
	}
	if a.Accepted != b.Accepted || a.Evals != b.Evals || a.SpeculativeEvals != b.SpeculativeEvals {
		return fmt.Errorf("counters differ: (%d %d %d) vs (%d %d %d)",
			a.Accepted, a.Evals, a.SpeculativeEvals, b.Accepted, b.Evals, b.SpeculativeEvals)
	}
	if !a.Best.StructuralEqual(b.Best) {
		return errors.New("best graphs differ")
	}
	if len(a.Chains) != len(b.Chains) {
		return fmt.Errorf("chain counts differ: %d vs %d", len(a.Chains), len(b.Chains))
	}
	for i := range a.Chains {
		ca, cb := &a.Chains[i], &b.Chains[i]
		if ca.Chain != cb.Chain || ca.Seed != cb.Seed || ca.BestCost != cb.BestCost ||
			ca.BestMetrics != cb.BestMetrics || ca.Accepted != cb.Accepted {
			return fmt.Errorf("chain %d header differs", i)
		}
		if !ca.Best.StructuralEqual(cb.Best) {
			return fmt.Errorf("chain %d best graphs differ", i)
		}
		if len(ca.History) != len(cb.History) {
			return fmt.Errorf("chain %d history lengths differ", i)
		}
		for h := range ca.History {
			if ca.History[h] != cb.History[h] {
				return fmt.Errorf("chain %d step %d differs: %+v vs %+v", i, h, ca.History[h], cb.History[h])
			}
		}
	}
	if len(a.History) != len(b.History) {
		return errors.New("winner history lengths differ")
	}
	for h := range a.History {
		if a.History[h] != b.History[h] {
			return fmt.Errorf("winner step %d differs", h)
		}
	}
	return nil
}

// startWorkers launches n in-process worker sessions over net.Pipe and
// returns the coordinator-side conns, the runners, and a wait function.
func startWorkers(runners []*fakeRunner) ([]io.ReadWriteCloser, func()) {
	conns := make([]io.ReadWriteCloser, len(runners))
	var wg sync.WaitGroup
	for i, r := range runners {
		c, w := net.Pipe()
		conns[i] = c
		wg.Add(1)
		go func(r *fakeRunner, w io.ReadWriteCloser) {
			defer wg.Done()
			Serve(w, r) // session errors are the tests' business via stats
		}(r, w)
	}
	return conns, wg.Wait
}

func TestLoopbackShardedRunMatchesLocal(t *testing.T) {
	base := testAIG(1)
	cfg := testConfig()
	jobs := testJobs(6)
	want := reference(t, base, cfg, jobs)

	runners := []*fakeRunner{newFakeRunner(), newFakeRunner()}
	conns, wait := startWorkers(runners)
	got, st, err := Run([]*aig.AIG{base}, cfg, jobs, Options{Conns: conns})
	if err != nil {
		t.Fatal(err)
	}
	wait()

	for i := range jobs {
		if got[i].Index != jobs[i].Index {
			t.Fatalf("result %d carries index %d", i, got[i].Index)
		}
		if got[i].TrueDelayPS != want[i].TrueDelayPS || got[i].TrueAreaUM2 != want[i].TrueAreaUM2 {
			t.Fatalf("job %d true metrics differ", i)
		}
		if err := sameResult(got[i].Result, want[i].Result); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}

	// Warm handoff accounting: one base per worker, everything else
	// delta records (chains bests per job), zero full graphs after that.
	if st.BaseSends != 2 {
		t.Fatalf("base sends = %d, want 2 (one per worker)", st.BaseSends)
	}
	wantRecords := len(jobs) * 2 // Chains: 2
	if st.DeltaRecords != wantRecords {
		t.Fatalf("delta records = %d, want %d", st.DeltaRecords, wantRecords)
	}
	if st.DeltaBytes <= 0 || st.BaseBytes <= 0 {
		t.Fatalf("byte accounting empty: %+v", st)
	}
	if st.JobSends != len(jobs) || st.Retries != 0 || st.WorkerLosses != 0 {
		t.Fatalf("unexpected scheduling stats: %+v", st)
	}
	// Both workers evaluate the shared root, so the merged cache must
	// have seen at least one cross-worker duplicate fingerprint, and
	// hold every distinct structure.
	if st.MergedStructures() == 0 || st.CacheRecords < st.MergedStructures() {
		t.Fatalf("cache merge accounting implausible: %d records, %d merged", st.CacheRecords, st.MergedStructures())
	}
	if st.CacheDuplicates == 0 {
		t.Fatal("expected cross-worker duplicate cache records (both workers score the root)")
	}
	// Work stealing: both workers must have contributed.
	if st.Workers[0].Jobs == 0 || st.Workers[1].Jobs == 0 {
		t.Fatalf("work not spread across workers: %+v", st.Workers)
	}
}

// A worker dying mid-sweep (connection killed while a job is in
// flight) must not lose results: the coordinator requeues the job on
// the surviving worker and the merged output still matches the local
// reference.
func TestWorkerKilledMidSweepRetriesElsewhere(t *testing.T) {
	base := testAIG(2)
	cfg := testConfig()
	jobs := testJobs(6)
	want := reference(t, base, cfg, jobs)

	dying, healthy := newFakeRunner(), newFakeRunner()
	dying.killAfter = 1 // complete one job, die during the second
	conns, wait := startWorkers([]*fakeRunner{dying, healthy})
	dying.killConn = conns[0]

	got, st, err := Run([]*aig.AIG{base}, cfg, jobs, Options{Conns: conns})
	if err != nil {
		t.Fatal(err)
	}
	wait()

	for i := range jobs {
		if err := sameResult(got[i].Result, want[i].Result); err != nil {
			t.Fatalf("job %d after worker loss: %v", i, err)
		}
	}
	if st.WorkerLosses != 1 {
		t.Fatalf("worker losses = %d, want 1", st.WorkerLosses)
	}
	if st.Requeues != 1 {
		t.Fatalf("requeues = %d, want 1 (the in-flight job)", st.Requeues)
	}
	if st.Workers[1].Jobs != len(jobs)-1 {
		t.Fatalf("surviving worker completed %d jobs, want %d", st.Workers[1].Jobs, len(jobs)-1)
	}
	if !st.Workers[0].Lost || st.Workers[1].Lost {
		t.Fatalf("loss attribution wrong: %+v", st.Workers)
	}
}

// A job that fails on one worker is retried on another (exclusion), and
// succeeds there.
func TestJobErrorRetriedOnOtherWorker(t *testing.T) {
	base := testAIG(3)
	cfg := testConfig()
	jobs := testJobs(4)
	want := reference(t, base, cfg, jobs)

	flaky, healthy := newFakeRunner(), newFakeRunner()
	for i := range jobs {
		flaky.failTimes[i] = 99 // every job fails on this worker, always
	}
	conns, wait := startWorkers([]*fakeRunner{flaky, healthy})
	got, st, err := Run([]*aig.AIG{base}, cfg, jobs, Options{Conns: conns})
	if err != nil {
		t.Fatal(err)
	}
	wait()

	for i := range jobs {
		if err := sameResult(got[i].Result, want[i].Result); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if st.Retries == 0 {
		t.Fatal("expected at least one retry")
	}
	if st.WorkerLosses != 0 {
		t.Fatalf("no worker should be lost: %+v", st)
	}
}

// When a job fails everywhere, the run reports a JobFailedError with
// the job's grid coordinates after exhausting MaxAttempts — but only
// after finishing every other job.
func TestJobErrorExhaustsAttempts(t *testing.T) {
	base := testAIG(4)
	cfg := testConfig()
	jobs := testJobs(4)

	r1, r2 := newFakeRunner(), newFakeRunner()
	r1.failTimes[1] = 99
	r2.failTimes[1] = 99
	conns, wait := startWorkers([]*fakeRunner{r1, r2})
	_, st, err := Run([]*aig.AIG{base}, cfg, jobs, Options{Conns: conns, MaxAttempts: 3})
	wait()
	if err == nil {
		t.Fatal("doomed job reported no error")
	}
	var jfe *JobFailedError
	if !errors.As(err, &jfe) {
		t.Fatalf("error %T is not a JobFailedError", err)
	}
	if jfe.Job.Index != 1 || jfe.Attempts != 3 {
		t.Fatalf("wrong failure attribution: %+v", jfe)
	}
	// The other jobs still completed (visible through worker stats).
	done := 0
	for _, w := range st.Workers {
		done += w.Jobs
	}
	if done != len(jobs)-1 {
		t.Fatalf("completed %d jobs, want %d", done, len(jobs)-1)
	}
}

// Losing every worker with work outstanding is an error, not a hang.
func TestAllWorkersLost(t *testing.T) {
	base := testAIG(5)
	cfg := testConfig()
	jobs := testJobs(3)

	r := newFakeRunner()
	r.killAfter = 0 // die during the first job
	conns, wait := startWorkers([]*fakeRunner{r})
	r.killConn = conns[0]
	_, _, err := Run([]*aig.AIG{base}, cfg, jobs, Options{Conns: conns})
	wait()
	if err == nil {
		t.Fatal("fleet loss reported no error")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	in := RunConfig{
		Base: anneal.Params{
			Iterations: 77, StartTemp: 0.123, DecayRate: 0.987,
			DelayWeight: 1.5, AreaWeight: 0.25, Seed: -9,
			BatchSize: 6, BatchMin: 2, BatchMax: 16, Workers: 3, Chains: 2,
			CacheMode: anneal.CacheOn, CacheMaxEntries: 512,
			Incremental: anneal.IncrementalOff, IncrementalThreshold: 0.5,
		},
		Entries: []EntrySpec{
			{Base: 0, Eval: EvalSpec{Kind: "ml", DelayModel: []byte(`{"trees":[]}`), AreaModel: []byte(`{}`), AreaPerNode: true}},
			{Base: 0, Eval: EvalSpec{Kind: "baseline"}},
			{Base: 1, Eval: EvalSpec{Kind: "ground-truth"}},
		},
		Library: []byte("library demo"),
	}
	out, err := decodeConfig(encodeConfig(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Base, in.Base) || !reflect.DeepEqual(out.Entries, in.Entries) {
		t.Fatalf("config did not round-trip: %+v vs %+v", out, in)
	}
	if string(out.Library) != string(in.Library) {
		t.Fatal("config blobs did not round-trip")
	}
	if _, err := decodeConfig([]byte{99}); err == nil {
		t.Fatal("wrong protocol version accepted")
	}
	// Entries sharing an evaluator spec share its wire encoding: adding
	// a second entry with the same ML models must cost entry-reference
	// bytes, not another copy of the blobs.
	base := len(encodeConfig(in))
	in.Entries = append(in.Entries, EntrySpec{Base: 1, Eval: in.Entries[0].Eval})
	if grown := len(encodeConfig(in)) - base; grown >= len(in.Entries[0].Eval.DelayModel) {
		t.Fatalf("duplicate spec re-encoded: +%d bytes for a shared-spec entry", grown)
	}
	out, err = decodeConfig(encodeConfig(in))
	if err != nil || !reflect.DeepEqual(out.Entries, in.Entries) {
		t.Fatalf("shared-spec config did not round-trip: %v", err)
	}
}

func TestJobAndBaseRoundTrip(t *testing.T) {
	in := JobSpec{Entry: 2, Index: 12, DelayWeight: 1, AreaWeight: 0.5, Decay: 0.9, SeedOffset: -4}
	out, err := decodeJob(encodeJob(in))
	if err != nil || out != in {
		t.Fatalf("job round-trip: %v %+v", err, out)
	}
	g := testAIG(6)
	payload, err := encodeBase(3, g)
	if err != nil {
		t.Fatal(err)
	}
	id, got, err := decodeBase(payload)
	if err != nil || id != 3 {
		t.Fatalf("base round-trip: %v %d", err, id)
	}
	if !got.StructuralEqual(g) {
		t.Fatal("base graph not reconstructed exactly")
	}
}

func TestSeedRoundTrip(t *testing.T) {
	in := []eval.CacheRecord{
		{FP: 0xdeadbeef, M: eval.Metrics{DelayPS: 12.5, AreaUM2: 3.25}},
		{FP: 1, M: eval.Metrics{DelayPS: -0.0, AreaUM2: 1e300}},
	}
	entry, out, err := decodeSeed(encodeSeed(5, in))
	if err != nil || entry != 5 || !reflect.DeepEqual(in, out) {
		t.Fatalf("seed round-trip: %v %d %+v", err, entry, out)
	}
	entry, out, err = decodeSeed(encodeSeed(0, nil))
	if err != nil || entry != 0 || len(out) != 0 {
		t.Fatalf("empty seed round-trip: %v %d %+v", err, entry, out)
	}
}
