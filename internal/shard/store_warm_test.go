package shard

import (
	"os"
	"path/filepath"
	"testing"

	"aigtimer/internal/aig"
	"aigtimer/internal/eval"
)

// TestStoreWarmStartByteIdentical is the tentpole acceptance test: a
// coordinator running with a persistent store — cold, warm, and
// restarting after a crash tore the store's tail — produces results
// bit-identical to the store-less local reference, while the warm
// sessions demonstrably skip oracle work (StoreLoaded, PrefilterHits).
//
// The sequence is one cluster lifetime: session one sweeps half the
// grid cold and flushes; session two (a fresh coordinator, as after a
// restart) warm-starts from the file, sweeps the full grid, and flushes
// what it newly discovered; then a crash mid-flush is simulated by
// tearing the final frame, and session three must recover the intact
// prefix and still warm-start — damage only ever forgets records, it
// never wedges a start or changes a result.
func TestStoreWarmStartByteIdentical(t *testing.T) {
	base := testAIG(9)
	cfg := testConfig()
	jobs := testJobs(6)
	want := reference(t, base, cfg, jobs)

	path := filepath.Join(t.TempDir(), "sweep.store")
	runWith := func(s *eval.Store, js []JobSpec) *Stats {
		t.Helper()
		runners := []*fakeRunner{newFakeRunner(), newFakeRunner()}
		conns, wait := startWorkers(runners)
		got, st, err := Run([]*aig.AIG{base}, cfg, js, Options{Conns: conns, Store: s})
		if err != nil {
			t.Fatal(err)
		}
		wait()
		for i := range js {
			if err := sameResult(got[i].Result, want[i].Result); err != nil {
				t.Fatalf("job %d with store: %v", i, err)
			}
		}
		return st
	}

	// Session one: cold over half the grid.
	s1, err := eval.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	st1 := runWith(s1, jobs[:3])
	if st1.StoreLoaded != 0 {
		t.Fatalf("cold session loaded %d records from an empty store", st1.StoreLoaded)
	}
	if st1.StoreFlushed == 0 {
		t.Fatal("cold session flushed nothing")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Session two: a fresh coordinator over the full grid warm-starts
	// from session one's records and flushes the newly explored ones.
	s2, err := eval.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if rb := s2.RecoveredBytes(); rb != 0 {
		t.Fatalf("cleanly closed store recovered %d bytes", rb)
	}
	if s2.Len() != st1.StoreFlushed {
		t.Fatalf("store holds %d records, session one flushed %d", s2.Len(), st1.StoreFlushed)
	}
	st2 := runWith(s2, jobs)
	if st2.StoreLoaded != st1.StoreFlushed {
		t.Fatalf("warm session loaded %d records, want %d", st2.StoreLoaded, st1.StoreFlushed)
	}
	if st2.PrefilterHits == 0 {
		t.Fatal("warm session reports no prefilter hits (stored knowledge unused)")
	}
	if st2.StoreFlushed == 0 {
		t.Fatal("full-grid session discovered nothing beyond the half grid (test needs a second frame)")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash: tear the tail mid-frame, as a coordinator killed during a
	// flush would. Recovery keeps every frame before the damage.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	s3, err := eval.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if s3.RecoveredBytes() == 0 {
		t.Fatal("torn tail not detected at open")
	}
	if s3.Len() != st1.StoreFlushed {
		t.Fatalf("recovery kept %d records, want session one's intact %d", s3.Len(), st1.StoreFlushed)
	}
	st3 := runWith(s3, jobs)
	if st3.StoreLoaded != st1.StoreFlushed {
		t.Fatalf("post-crash session loaded %d records, want %d", st3.StoreLoaded, st1.StoreFlushed)
	}
	if st3.StoreFlushed == 0 {
		t.Fatal("post-crash session did not re-flush the lost records")
	}
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
}
