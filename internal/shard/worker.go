package shard

import (
	"bufio"
	"fmt"
	"io"

	"aigtimer/internal/aig"
	"aigtimer/internal/eval"
)

// Runner executes grid points on the worker side. The shard layer
// handles transport, base-graph plumbing, and retry; the Runner owns
// everything domain-specific — constructing the per-entry evaluators
// named by the config, building the evaluation stacks, running the
// anneal, and the ground-truth re-evaluation (flows.NewShardRunner is
// the production implementation). A Runner serves one session at a
// time; Serve calls it sequentially.
type Runner interface {
	// Configure installs the session configuration. It is called once,
	// before any job or seed push.
	Configure(cfg RunConfig) error
	// Run executes one grid point against the given base graph (the one
	// named by the job's entry). The result must be bit-identical to
	// what the same job would produce locally — the coordinator's merge
	// is checked against that promise.
	Run(base *aig.AIG, job JobSpec) (*WorkResult, error)
	// CacheSnapshot exports the entry's memo-cache records added since
	// the previous call for the same entry (nil when the entry is
	// uncached or nothing is new); the session ships them with each
	// result for coordinator-side merging. Implementations back this
	// with eval.Cached.ExportSince, so a call costs O(new records).
	CacheSnapshot(entry int) []eval.CacheRecord
	// Preseed installs merged cache records the coordinator pushed for
	// one entry (a no-op for uncached entries). Implementations back
	// this with eval.Cached.ImportRecords, so a pushed record may only
	// ever skip oracle work, never answer a lookup.
	Preseed(entry int, recs []eval.CacheRecord)
	// CacheStats reports the session-cumulative cache counters summed
	// over all entries (zero value for uncached runners); the prefilter
	// counters ride along with every result for coordinator accounting.
	CacheStats() eval.CacheStats
}

// Serve speaks the worker side of the shard protocol over conn until
// the coordinator says bye or the transport fails. Job execution errors
// are reported to the coordinator (which retries elsewhere) and do not
// end the session; protocol and transport errors do, and are returned.
func Serve(conn io.ReadWriteCloser, runner Runner) error {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	bases := make(map[uint32]*aig.AIG)
	var cfg RunConfig
	configured := false
	for {
		typ, payload, err := readMsg(br)
		if err != nil {
			if err == io.EOF {
				return nil // coordinator vanished between jobs; nothing owed
			}
			return fmt.Errorf("shard: worker read: %w", err)
		}
		switch typ {
		case msgConfig:
			cfg, err = decodeConfig(payload)
			if err != nil {
				return err
			}
			if err := runner.Configure(cfg); err != nil {
				return fmt.Errorf("shard: configure: %w", err)
			}
			configured = true
		case msgBase:
			id, g, err := decodeBase(payload)
			if err != nil {
				return err
			}
			bases[id] = g
		case msgCacheSeed:
			if !configured {
				return fmt.Errorf("shard: cache seed before config")
			}
			entry, recs, err := decodeSeed(payload)
			if err != nil {
				return err
			}
			if entry < 0 || entry >= len(cfg.Entries) {
				return fmt.Errorf("shard: cache seed for unknown entry %d", entry)
			}
			runner.Preseed(entry, recs)
		case msgJob:
			if !configured {
				return fmt.Errorf("shard: job before config")
			}
			job, err := decodeJob(payload)
			if err != nil {
				return err
			}
			if job.Entry < 0 || job.Entry >= len(cfg.Entries) {
				return fmt.Errorf("shard: job references unknown entry %d", job.Entry)
			}
			base, ok := bases[uint32(cfg.Entries[job.Entry].Base)]
			if !ok {
				return fmt.Errorf("shard: job references unsent base %d", cfg.Entries[job.Entry].Base)
			}
			var out []byte
			wr, err := runner.Run(base, job)
			if err == nil {
				out, err = encodeResult(base, job.Index, wr, runner.CacheSnapshot(job.Entry), runner.CacheStats())
			}
			if err != nil {
				if werr := writeMsg(bw, msgJobError, encodeJobError(job.Index, err)); werr != nil {
					return fmt.Errorf("shard: worker write: %w", werr)
				}
			} else if err := writeMsg(bw, msgResult, out); err != nil {
				return fmt.Errorf("shard: worker write: %w", err)
			}
			if err := bw.Flush(); err != nil {
				return fmt.Errorf("shard: worker flush: %w", err)
			}
		case msgBye:
			return nil
		default:
			return fmt.Errorf("shard: unexpected message type %d", typ)
		}
	}
}
