package shard

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"aigtimer/internal/aig"
	"aigtimer/internal/eval"
)

// Runner executes grid points on the worker side. The shard layer
// handles transport, base-graph plumbing, and retry; the Runner owns
// everything domain-specific — constructing the per-entry evaluators
// named by the config, building the evaluation stacks, running the
// anneal, and the ground-truth re-evaluation (flows.NewShardRunner is
// the production implementation). A Runner serves one session at a
// time; Serve calls it sequentially.
type Runner interface {
	// Configure installs the session configuration. It is called once
	// per session, before any job or seed push of that session; on a
	// resident worker a later Configure starts a fresh session and must
	// not inherit per-entry state from the previous one.
	Configure(cfg RunConfig) error
	// Run executes one grid point against the given base graph (the one
	// named by the job's entry). The result must be bit-identical to
	// what the same job would produce locally — the coordinator's merge
	// is checked against that promise.
	Run(base *aig.AIG, job JobSpec) (*WorkResult, error)
	// CacheSnapshot exports the entry's memo-cache records added since
	// the previous call for the same entry (nil when the entry is
	// uncached or nothing is new); the session ships them with each
	// result for coordinator-side merging. Implementations back this
	// with eval.Cached.ExportSince, so a call costs O(new records).
	CacheSnapshot(entry int) []eval.CacheRecord
	// Preseed installs merged cache records the coordinator pushed for
	// one entry (a no-op for uncached entries). Implementations back
	// this with eval.Cached.ImportRecords, so a pushed record may only
	// ever skip oracle work, never answer a lookup. Preseed may be
	// called concurrently with Run — a hub pushes seeds while a job is
	// executing — and implementations must tolerate that (eval.Cached
	// is mutex-guarded, so the production runner already does).
	Preseed(entry int, recs []eval.CacheRecord)
	// CacheStats reports the session-cumulative cache counters summed
	// over all entries (zero value for uncached runners); the prefilter
	// counters ride along with every result for coordinator accounting.
	CacheStats() eval.CacheStats
	// EndSession drops all per-session state (evaluation stacks, caches,
	// warm-start bookkeeping) so a resident worker does not accumulate
	// memory across the sessions a hub feeds it. Long-lived resources
	// that are session-independent (e.g. a shared evaluation-stack pool)
	// survive. Called between sessions; never concurrently with Run.
	EndSession()
}

// workerState is the shared state between the Serve goroutines: the
// reader (which owns the protocol), the executor (which owns the
// Runner), and the writer (which owns the transport's write side).
type workerState struct {
	mu         sync.Mutex
	cond       *sync.Cond
	cfgGen     int   // bumped by the reader on each msgConfig
	appliedGen int   // set by the executor once Configure returned
	fatal      error // first protocol/Runner-level fatal error
}

func (ws *workerState) setFatal(err error) {
	ws.mu.Lock()
	if ws.fatal == nil {
		ws.fatal = err
	}
	ws.cond.Broadcast()
	ws.mu.Unlock()
}

func (ws *workerState) fatalErr() error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.fatal
}

// waitApplied blocks until the executor has applied config generation
// gen (so seeds pushed right behind a config are not imported into the
// previous session's stacks). Returns false if a fatal error lands
// first — the caller must stop decoding.
func (ws *workerState) waitApplied(gen int) bool {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for ws.appliedGen < gen && ws.fatal == nil {
		ws.cond.Wait()
	}
	return ws.fatal == nil
}

func (ws *workerState) applied(gen int) {
	ws.mu.Lock()
	if gen > ws.appliedGen {
		ws.appliedGen = gen
	}
	ws.cond.Broadcast()
	ws.mu.Unlock()
}

// workerCmd is one unit of work handed from the reader to the executor.
type workerCmd struct {
	typ     byte
	cfg     RunConfig // msgConfig
	cfgGen  int       // msgConfig
	baseID  uint32    // msgBase
	base    *aig.AIG  // msgBase
	job     JobSpec   // msgJob
}

// Serve speaks the worker side of the shard protocol over conn until
// the coordinator says bye, the connection closes while no session is
// active, or the transport fails. Job execution errors are reported to
// the coordinator (which retries elsewhere) and do not end the session;
// protocol and transport errors do, and are returned.
//
// Serve is full duplex: reading (so a cache seed pushed mid-job is
// imported before the *next* job, not after the next dispatch
// round-trip), job execution, and result writing run in independent
// goroutines.
//
// An EOF is only a clean shutdown when it arrives between sessions —
// after a msgEndSession, or before any config on a connection that has
// already served one. EOF before the first config, or mid-session, or
// with a job outstanding, is reported as an error so supervisors can
// tell a half-open hub connection from an orderly drain.
func Serve(conn io.ReadWriteCloser, runner Runner) error {
	defer conn.Close()
	return serveConn(conn, bufio.NewReader(conn), runner)
}

// serveConn is Serve with the buffered reader supplied by the caller —
// the hub handshake path has already consumed bytes from the stream.
func serveConn(conn io.ReadWriteCloser, br *bufio.Reader, runner Runner) error {
	ws := &workerState{}
	ws.cond = sync.NewCond(&ws.mu)

	var outstanding atomic.Int64 // jobs dispatched, result not yet flushed
	var writeErr error
	var writeErrOnce sync.Once

	cmds := make(chan workerCmd, 4)
	outs := make(chan outFrame, 4)
	var wg sync.WaitGroup

	// Writer: owns the transport's write side. One flush per frame so a
	// result lands on the wire the moment it exists, independent of what
	// the executor does next. After a write error it keeps draining so
	// the executor never blocks, but touches the connection no further.
	wg.Add(1)
	go func() {
		defer wg.Done()
		bw := bufio.NewWriter(conn)
		dead := false
		for f := range outs {
			if !dead {
				err := writeMsg(bw, f.typ, f.payload)
				if err == nil {
					err = bw.Flush()
				}
				if err != nil {
					writeErrOnce.Do(func() { writeErr = err })
					dead = true
					conn.Close()
				}
			}
			if f.typ == msgResult || f.typ == msgJobError {
				outstanding.Add(-1)
			}
		}
	}()

	// Executor: owns the Runner. Runs jobs sequentially in command
	// order; after a fatal error it keeps draining commands (decrementing
	// nothing — the reader stops feeding jobs once it observes fatal).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(outs)
		var cfg RunConfig
		var bases map[uint32]*aig.AIG
		for c := range cmds {
			if ws.fatalErr() != nil {
				continue
			}
			switch c.typ {
			case msgConfig:
				if err := runner.Configure(c.cfg); err != nil {
					ws.setFatal(fmt.Errorf("shard: configure: %w", err))
					conn.Close()
					continue
				}
				cfg = c.cfg
				bases = make(map[uint32]*aig.AIG)
				ws.applied(c.cfgGen)
			case msgBase:
				if bases == nil {
					ws.setFatal(fmt.Errorf("shard: base before config"))
					conn.Close()
					continue
				}
				bases[c.baseID] = c.base
			case msgJob:
				base, ok := bases[uint32(cfg.Entries[c.job.Entry].Base)]
				if !ok {
					ws.setFatal(fmt.Errorf("shard: job references unsent base %d", cfg.Entries[c.job.Entry].Base))
					conn.Close()
					continue
				}
				var out []byte
				wr, err := runner.Run(base, c.job)
				if err == nil {
					out, err = encodeResult(base, c.job.Index, wr, runner.CacheSnapshot(c.job.Entry), runner.CacheStats())
				}
				if err != nil {
					outs <- outFrame{typ: msgJobError, payload: encodeJobError(c.job.Index, err)}
				} else {
					outs <- outFrame{typ: msgResult, payload: out}
				}
			case msgEndSession:
				bases = nil
				runner.EndSession()
			}
		}
	}()

	// Reader: owns the protocol. Decodes every frame; seeds are applied
	// here — concurrently with a running job — which is the whole point
	// of the split.
	var (
		everConfigured bool // at least one session started on this conn
		sessionActive  bool // a session is open (config seen, no end yet)
		sawBye         bool
		numEntries     int
		readErr        error
	)
loop:
	for {
		typ, payload, err := readMsg(br)
		if err != nil {
			readErr = err
			break
		}
		switch typ {
		case msgConfig:
			cfg, err := decodeConfig(payload)
			if err != nil {
				readErr = err
				break loop
			}
			ws.mu.Lock()
			ws.cfgGen++
			gen := ws.cfgGen
			ws.mu.Unlock()
			everConfigured = true
			sessionActive = true
			numEntries = len(cfg.Entries)
			cmds <- workerCmd{typ: msgConfig, cfg: cfg, cfgGen: gen}
		case msgBase:
			id, g, err := decodeBase(payload)
			if err != nil {
				readErr = err
				break loop
			}
			if !sessionActive {
				readErr = fmt.Errorf("shard: base before config")
				break loop
			}
			cmds <- workerCmd{typ: msgBase, baseID: id, base: g}
		case msgCacheSeed:
			if !sessionActive {
				readErr = fmt.Errorf("shard: cache seed before config")
				break loop
			}
			entry, recs, err := decodeSeed(payload)
			if err != nil {
				readErr = err
				break loop
			}
			if entry < 0 || entry >= numEntries {
				readErr = fmt.Errorf("shard: cache seed for unknown entry %d", entry)
				break loop
			}
			// Wait for the executor to have applied this session's
			// config, then import directly: the job mid-flight sees the
			// records on its very next oracle lookup.
			ws.mu.Lock()
			gen := ws.cfgGen
			ws.mu.Unlock()
			if !ws.waitApplied(gen) {
				break loop // fatal landed; surfaced below
			}
			runner.Preseed(entry, recs)
		case msgJob:
			if !sessionActive {
				readErr = fmt.Errorf("shard: job before config")
				break loop
			}
			job, err := decodeJob(payload)
			if err != nil {
				readErr = err
				break loop
			}
			if job.Entry < 0 || job.Entry >= numEntries {
				readErr = fmt.Errorf("shard: job references unknown entry %d", job.Entry)
				break loop
			}
			if ws.fatalErr() != nil {
				break loop
			}
			outstanding.Add(1)
			cmds <- workerCmd{typ: msgJob, job: job}
		case msgEndSession:
			sessionActive = false
			cmds <- workerCmd{typ: msgEndSession}
		case msgBye:
			sawBye = true
			break loop
		default:
			readErr = fmt.Errorf("shard: unexpected message type %d", typ)
			break loop
		}
	}

	close(cmds)
	wg.Wait()

	if err := ws.fatalErr(); err != nil {
		return err
	}
	if sawBye {
		return nil
	}
	if writeErr != nil {
		return fmt.Errorf("shard: worker write: %w", writeErr)
	}
	if readErr == io.EOF {
		if !everConfigured {
			return fmt.Errorf("shard: connection closed before any session")
		}
		if n := outstanding.Load(); sessionActive || n > 0 {
			return fmt.Errorf("shard: connection closed mid-session (%d jobs outstanding)", n)
		}
		return nil // idle between sessions; orderly enough
	}
	if readErr != nil {
		return fmt.Errorf("shard: worker read: %w", readErr)
	}
	return nil
}
