package signoff

import (
	"math/rand"
	"testing"

	"aigtimer/internal/aig"
	"aigtimer/internal/cell"
)

// TestParallelFullEvalZeroAllocs pins the zero-allocation contract of
// the parallel pooled full evaluation: once the pool's per-lane
// arenas, per-effort scratches, and per-corner buffers are warm, a
// full EvaluateState + Release cycle allocates nothing — the same
// guarantee the sequential pooled path has had since the arena work.
func TestParallelFullEvalZeroAllocs(t *testing.T) {
	lib := cell.Builtin()
	rng := rand.New(rand.NewSource(21))
	g := randomAIG(rng, 8, 300, 5)
	pool := NewPoolParallel(2)
	defer pool.Close()
	// Warm: two passes so every carcass in the freelist cycle has
	// reached its high-water mark.
	for i := 0; i < 2; i++ {
		_, st, err := pool.EvaluateState(g, lib)
		if err != nil {
			t.Fatal(err)
		}
		st.Release()
	}
	avg := testing.AllocsPerRun(100, func() {
		_, st, err := pool.EvaluateState(g, lib)
		if err != nil {
			t.Fatal(err)
		}
		st.Release()
	})
	if avg != 0 {
		t.Fatalf("parallel full evaluation allocates %v per run, want 0", avg)
	}
}

// TestParallelDeltaEvalZeroAllocs pins the same contract for the
// parallel delta path: concurrent per-effort remaps plus seeded
// corner-parallel STA, allocation-free once warm.
func TestParallelDeltaEvalZeroAllocs(t *testing.T) {
	lib := cell.Builtin()
	rng := rand.New(rand.NewSource(22))
	g := randomAIG(rng, 8, 250, 4)
	pool := NewPoolParallel(2)
	defer pool.Close()
	_, anchor, err := pool.EvaluateState(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-generate rebased candidates so the measured loop does no
	// graph construction of its own.
	type cand struct {
		next *aig.AIG
		d    *aig.Delta
	}
	cands := make([]cand, 32)
	for i := range cands {
		next, d := aig.Rebase(g, mutateParallel(g, rng))
		cands[i] = cand{next, d}
	}
	// Warm every candidate once (sizes differ slightly; the scratch
	// high-water mark must cover them all).
	for _, c := range cands {
		_, st, err := anchor.EvaluateDelta(c.next, c.d)
		if err != nil {
			t.Fatal(err)
		}
		st.Release()
	}
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		c := cands[i%len(cands)]
		i++
		_, st, err := anchor.EvaluateDelta(c.next, c.d)
		if err != nil {
			t.Fatal(err)
		}
		st.Release()
	})
	if avg != 0 {
		t.Fatalf("parallel delta evaluation allocates %v per run, want 0", avg)
	}
}
