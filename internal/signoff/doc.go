// Package signoff defines the repository's single ground-truth evaluation
// pipeline: the "technology mapping + STA" black box of the paper's
// ground-truth flow, also used to label every training sample.
//
// One evaluation runs:
//
//  1. delay-oriented structural mapping (default effort),
//  2. a second, high-effort mapping (wider priority-cut budget and a
//     heavier nominal load), and
//  3. multi-corner slew-propagating NLDM STA on both candidates,
//
// keeping the netlist with the better slow-corner delay (area breaks
// ties). The reported delay is the slow-corner maximum delay; the area is
// the chosen netlist's cell area. Centralizing this here guarantees that
// optimization flows, dataset labels, and experiment tables all agree on
// what "ground truth" means.
//
// # Contract
//
// Evaluate is deterministic: structurally equal AIGs produce identical
// results, on any machine — the foundation of the evaluation layer's
// memoization, of cross-process cache-record merging, and of the
// distributed sweep's byte-identical result guarantee.
//
// EvaluateState additionally retains the full mapping and STA state of
// both effort levels; EvalState.EvaluateDelta re-evaluates a derived
// graph from that state through incremental remapping (techmap.Remap)
// and incremental multi-corner STA (sta.SignoffUpdate) at cone-sized
// cost. Exactness is inherited from those layers and re-checked here:
// the delta result is bit-identical to a from-scratch evaluation, so
// callers may mix full and incremental evaluations freely without
// perturbing any trajectory.
//
// # Intra-evaluation parallelism
//
// A Pool built with NewPoolParallel fans one evaluation across goroutine
// lanes: the two mapping efforts run concurrently, cut enumeration and
// implementation selection are parallelized level by level within each
// effort (via the stepwise techmap.Mapping and cut.DualNode entry
// points), and the per-corner STA passes (sta.SignoffRun, and
// BeginSignoffUpdate for the delta path) fan out per effort × corner.
// Results are merged in a fixed effort-then-corner order, so every lane
// count — including 1 — produces bit-identical netlists, arrivals, and
// errors; the knob trades wall clock only. Lanes reuse retained
// scratch, preserving the pool's zero-allocation steady state, a
// property the parallel differential suite and fuzz target in this
// package enforce under the race detector.
package signoff
