package signoff

import (
	"aigtimer/internal/aig"
	"aigtimer/internal/cell"
	"aigtimer/internal/cut"
	"aigtimer/internal/sta"
	"aigtimer/internal/techmap"
)

// Parallel evaluation orchestration. A pool built with NewPoolParallel
// runs each evaluation's three independent axes concurrently on the
// scratch's worker crew — (1) per-level cut enumeration, (2) per-level
// dual-effort match selection, (3) the two efforts' mapping tails
// followed by every (effort, corner) STA pass — with results
// bit-identical to the sequential path. Identity holds by
// construction, not by tolerance:
//
//   - every task runs the same per-node/per-corner code the sequential
//     loop runs (cut.DualNode, techmap's SelectNode, sta's Corner);
//   - tasks within a phase are data-independent (a node's merge and
//     selection read only strictly-lower nodes, which the level
//     decomposition orders before it; corners share only read-only
//     state), so execution order cannot matter;
//   - every merge folds in a fixed order (efforts then corners
//     ascending, the final pick in effort order), and errors are
//     reported exactly as the sequential pass would: lowest node index
//     for selection, lowest corner index per effort, with effort 0's
//     whole pipeline outranking effort 1's.
//
// Storage ownership is per-lane (enumeration arenas and scratches,
// candidate buffers) or per-effort/per-corner (mapping scratches, STA
// results, dirty buffers), all retained on the EvalState/evalScratch
// carcasses, so the steady state allocates nothing — the same
// contract the sequential pooled path has.

// minParallelLevel is the level population below which enumeration and
// selection run inline on the caller's lane: a crew dispatch costs two
// synchronizations per lane, which narrow levels (the top of the cone)
// cannot amortize. A fixed constant, so the lane->node assignment —
// and with it each lane's arena high-water mark — stays deterministic.
const minParallelLevel = 16

// growI32 returns b resized to n entries, contents unspecified.
func growI32(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

// selErr records one lane's first (lowest-node) selection failure.
type selErr struct {
	node int32
	err  error
}

// ensureLanes sizes the per-lane buffers and clears the error slots.
func (sc *evalScratch) ensureLanes(lanes int) {
	for len(sc.enum) < lanes {
		sc.enum = append(sc.enum, cut.Scratch{})
	}
	for len(sc.selErrs) < 2*lanes {
		sc.selErrs = append(sc.selErrs, selErr{})
	}
	for i := range sc.selErrs {
		sc.selErrs[i] = selErr{}
	}
}

// growStaErrs sizes and clears the per-(effort, corner) error slots.
func (sc *evalScratch) growStaErrs(numCorners int) {
	for e := range sc.staErrs {
		if cap(sc.staErrs[e]) < numCorners {
			sc.staErrs[e] = make([]error, numCorners)
		}
		sc.staErrs[e] = sc.staErrs[e][:numCorners]
		for ci := range sc.staErrs[e] {
			sc.staErrs[e][ci] = nil
		}
	}
}

// selError folds the lanes' selection errors for one effort into the
// error the sequential pass would have returned: the one at the lowest
// node index (lanes own disjoint node sets, so ties are impossible).
func (sc *evalScratch) selError(e int) error {
	var best selErr
	for l := 0; l*2+e < len(sc.selErrs); l++ {
		s := sc.selErrs[l*2+e]
		if s.err != nil && (best.err == nil || s.node < best.node) {
			best = s
		}
	}
	return best.err
}

// levelize builds the level decomposition of g's AND nodes into sc's
// CSR buffers: order groups the nodes by logic level with ascending
// index within a level, levelOff[b]..levelOff[b+1] delimits level b+1
// (AND levels start at 1). Returns the number of AND levels. Computed
// here rather than via g.Levels() so the parallel path touches no
// lazily cached state on the graph.
func (sc *evalScratch) levelize(g *aig.AIG) int {
	n := g.NumNodes()
	first := int(g.FirstAnd())
	sc.levelOf = growI32(sc.levelOf, n)
	lv := sc.levelOf
	for i := 0; i < first; i++ {
		lv[i] = 0
	}
	maxLevel := int32(0)
	for i := first; i < n; i++ {
		f0, f1 := g.Fanins(int32(i))
		l := lv[f0.Node()]
		if l1 := lv[f1.Node()]; l1 > l {
			l = l1
		}
		l++
		lv[i] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	numLevels := int(maxLevel)
	sc.cursor = growI32(sc.cursor, numLevels+1)
	cnt := sc.cursor
	for i := range cnt {
		cnt[i] = 0
	}
	for i := first; i < n; i++ {
		cnt[lv[i]]++
	}
	sc.levelOff = growI32(sc.levelOff, numLevels+1)
	off := sc.levelOff
	run := int32(0)
	for b := 0; b < numLevels; b++ {
		off[b] = run
		run += cnt[b+1]
	}
	off[numLevels] = run
	for l := 1; l <= numLevels; l++ {
		cnt[l] = off[l-1]
	}
	sc.order = growI32(sc.order, n-first)
	ord := sc.order
	for i := first; i < n; i++ {
		l := lv[i]
		ord[cnt[l]] = int32(i)
		cnt[l]++
	}
	return numLevels
}

// enumRunner is phase A: task t merges the dual cut sets of the
// current level's t-th node, on lane `lane`'s arena and scratch.
type enumRunner struct {
	g    *aig.AIG
	st   *EvalState
	sc   *evalScratch
	base int
}

func (r *enumRunner) Do(task, lane int) {
	n := r.sc.order[r.base+task]
	cut.DualNode(r.g, efforts[0].Cut, efforts[1].Cut, r.st.cutbufs[0], r.st.cutbufs[1],
		r.sc.isPrefix, n, &r.st.arenas[lane], &r.sc.enum[lane])
}

// selRunner is phase B1: task t selects implementations for effort
// t&1 of the current level's (t/2)-th node; interleaving the efforts
// keeps the static block partition balanced across both.
type selRunner struct {
	sc   *evalScratch
	base int
}

func (r *selRunner) Do(task, lane int) {
	e := task & 1
	n := r.sc.order[r.base+task>>1]
	if err := r.sc.mps[e].SelectNode(n, lane); err != nil {
		slot := &r.sc.selErrs[lane*2+e]
		if slot.err == nil || n < slot.node {
			slot.node, slot.err = n, err
		}
	}
}

// tailRunner is phase B2: task e finishes effort e's mapping (area
// recovery, netlist emission) and begins its signoff run.
type tailRunner struct {
	st *EvalState
	sc *evalScratch
}

func (r *tailRunner) Do(task, lane int) {
	nl, ms, err := r.sc.mps[task].Finish()
	if err != nil {
		r.sc.tailErrs[task] = err
		return
	}
	r.sc.nls[task], r.sc.mss[task] = nl, ms
	r.sc.runs[task] = sta.BeginSignoff(nl, sta.SignoffParams{}, r.st.srs[task])
}

// deltaRunner is the delta path's phase D1: task e remaps effort e
// incrementally and begins its seeded signoff run.
type deltaRunner struct {
	prev *EvalState
	next *aig.AIG
	d    *aig.Delta
	ns   *EvalState
	sc   *evalScratch
}

func (r *deltaRunner) Do(task, lane int) {
	e := task
	nl, ms, nm, err := techmap.RemapInto(r.prev.maps[e], r.next, r.d, &r.ns.arenas[e], r.ns.maps[e], &r.sc.tm[e])
	if err != nil {
		r.sc.tailErrs[e] = err
		return
	}
	r.sc.nls[e], r.sc.mss[e] = nl, ms
	r.sc.runs[e] = sta.BeginSignoffUpdate(r.prev.srs[e], nl, nm, sta.SignoffParams{}, r.ns.srs[e], &r.sc.sta[e])
}

// cornerRunner is phase B3/D2: task t analyzes corner t>>1 of effort
// t&1; interleaving keeps both efforts' corners spread across lanes.
type cornerRunner struct {
	sc *evalScratch
}

func (r *cornerRunner) Do(task, lane int) {
	e, ci := task&1, task>>1
	r.sc.staErrs[e][ci] = r.sc.runs[e].Corner(ci)
}

// runLevel dispatches one level's tasks: crew-wide when the level is
// wide enough to amortize the dispatch, inline on lane 0 otherwise.
func (sc *evalScratch) runLevel(n int, r interface {
	Do(task, lane int)
}) {
	if n < minParallelLevel {
		for t := 0; t < n; t++ {
			r.Do(t, 0)
		}
		return
	}
	sc.crew.Run(n, r)
}

// evaluateFullParallel is evaluateInto's parallel body: per-level dual
// cut enumeration (A), per-level dual-effort selection (B1), the two
// mapping tails (B2), and every (effort, corner) STA pass (B3), joined
// by a deterministic effort/corner-ordered merge.
func evaluateFullParallel(g *aig.AIG, lib *cell.Library, st *EvalState, sc *evalScratch) (Result, error) {
	lanes := sc.crew.Lanes()
	st.g = g
	st.ensureArenas(lanes)
	n := g.NumNodes()
	st.cutbufs[0] = growCutLists(st.cutbufs[0], n)
	st.cutbufs[1] = growCutLists(st.cutbufs[1], n)
	sc.ensureLanes(lanes)
	numLevels := sc.levelize(g)
	if cap(sc.isPrefix) < n {
		sc.isPrefix = make([]bool, n)
	}
	sc.isPrefix = sc.isPrefix[:n]
	cut.SeedDual(g, efforts[0].Cut, efforts[1].Cut, st.cutbufs[0], st.cutbufs[1], sc.isPrefix, &st.arenas[0])

	// Phase A: cut enumeration, level by level.
	er := &sc.enumRun
	*er = enumRunner{g: g, st: st, sc: sc}
	for b := 0; b < numLevels; b++ {
		lo, hi := int(sc.levelOff[b]), int(sc.levelOff[b+1])
		er.base = lo
		sc.runLevel(hi-lo, er)
	}

	// Phase B1: dual-effort match selection, level by level.
	var err error
	sc.mps[0], err = techmap.BeginMappingWithCuts(g, lib, efforts[0], st.cutbufs[0], st.maps[0], &sc.tm[0], lanes)
	if err != nil {
		return Result{}, err
	}
	sc.mps[1], err = techmap.BeginMappingWithCuts(g, lib, efforts[1], st.cutbufs[1], st.maps[1], &sc.tm[1], lanes)
	if err != nil {
		return Result{}, err
	}
	selr := &sc.selRun
	*selr = selRunner{sc: sc}
	for b := 0; b < numLevels; b++ {
		lo, hi := int(sc.levelOff[b]), int(sc.levelOff[b+1])
		selr.base = lo
		sc.runLevel(2*(hi-lo), selr)
	}
	if err0 := sc.selError(0); err0 != nil {
		return Result{}, err0
	}
	if err1 := sc.selError(1); err1 != nil {
		// Sequential order runs effort 0's tail and corners before
		// effort 1's selection and may surface an earlier error.
		nl, ms, err := sc.mps[0].Finish()
		if err != nil {
			return Result{}, err
		}
		sr, err := sta.SignoffInto(nl, sta.SignoffParams{}, st.srs[0])
		if err != nil {
			return Result{}, err
		}
		st.maps[0], st.srs[0] = ms, sr
		return Result{}, err1
	}

	// Phase B2: the two mapping tails.
	sc.tailErrs = [2]error{}
	tr := &sc.tailRun
	*tr = tailRunner{st: st, sc: sc}
	sc.crew.Run(2, tr)
	if err := sc.tailErrs[0]; err != nil {
		return Result{}, err
	}
	if err := sc.tailErrs[1]; err != nil {
		for ci := 0; ci < sc.runs[0].NumCorners(); ci++ {
			if cerr := sc.runs[0].Corner(ci); cerr != nil {
				return Result{}, cerr
			}
		}
		return Result{}, err
	}

	// Phase B3: every (effort, corner) pass, then the ordered merge.
	nc := sc.runs[0].NumCorners()
	sc.growStaErrs(nc)
	cr := &sc.cornerRun
	*cr = cornerRunner{sc: sc}
	sc.crew.Run(2*nc, cr)
	best := Result{}
	for e := 0; e < 2; e++ {
		for ci := 0; ci < nc; ci++ {
			if err := sc.staErrs[e][ci]; err != nil {
				return Result{}, err
			}
		}
		sr := sc.runs[e].Finish()
		st.maps[e], st.srs[e] = sc.mss[e], sr
		best = pick(best, e, sc.nls[e], sr)
	}
	return best, nil
}

// evaluateDeltaParallel is EvaluateDelta's parallel body: both efforts
// remap and seed their signoff runs concurrently (D1), then every
// (effort, corner) pass runs (D2), with the same ordered merge and
// sequential error precedence as the full path.
func evaluateDeltaParallel(s *EvalState, next *aig.AIG, d *aig.Delta, ns *EvalState, sc *evalScratch) (Result, *EvalState, error) {
	ns.ensureArenas(2)
	sc.tailErrs = [2]error{}
	dr := &sc.deltaRun
	*dr = deltaRunner{prev: s, next: next, d: d, ns: ns, sc: sc}
	sc.crew.Run(2, dr)
	if err := sc.tailErrs[0]; err != nil {
		ns.Release()
		return Result{}, nil, err
	}
	if err := sc.tailErrs[1]; err != nil {
		// Sequential order runs effort 0's corner passes before effort
		// 1's remap and may surface an earlier error.
		for ci := 0; ci < sc.runs[0].NumCorners(); ci++ {
			if cerr := sc.runs[0].Corner(ci); cerr != nil {
				ns.Release()
				return Result{}, nil, cerr
			}
		}
		ns.Release()
		return Result{}, nil, err
	}
	nc := sc.runs[0].NumCorners()
	sc.growStaErrs(nc)
	cr := &sc.cornerRun
	*cr = cornerRunner{sc: sc}
	sc.crew.Run(2*nc, cr)
	best := Result{}
	for e := 0; e < 2; e++ {
		for ci := 0; ci < nc; ci++ {
			if err := sc.staErrs[e][ci]; err != nil {
				ns.Release()
				return Result{}, nil, err
			}
		}
		sr := sc.runs[e].Finish()
		ns.maps[e], ns.srs[e] = sc.mss[e], sr
		best = pick(best, e, sc.nls[e], sr)
	}
	return best, ns, nil
}
