package signoff

import (
	"math/rand"
	"testing"

	"aigtimer/internal/aig"
	"aigtimer/internal/cell"
	"aigtimer/internal/netlist"
)

// mutateParallel rebuilds g with cone-local redundant restructurings,
// the kind of change annealer moves produce (mirrors the techmap and
// eval differential harnesses).
func mutateParallel(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	nb := aig.NewBuilder(g.NumPIs())
	m := make([]aig.Lit, g.NumNodes())
	m[0] = aig.ConstFalse
	for i := 1; i <= g.NumPIs(); i++ {
		m[i] = nb.PI(i - 1)
	}
	g.TopoForEachAnd(func(n int32, f0, f1 aig.Lit) {
		a := m[f0.Node()].NotIf(f0.IsCompl())
		c := m[f1.Node()].NotIf(f1.IsCompl())
		switch rng.Intn(12) {
		case 0:
			m[n] = nb.Or(a.Not(), c.Not()).Not()
		case 1:
			m[n] = nb.And(c, a)
		default:
			m[n] = nb.And(a, c)
		}
	})
	for _, po := range g.POs() {
		nb.AddPO(m[po.Node()].NotIf(po.IsCompl()))
	}
	return nb.Build().Compact()
}

// mustEqualNetlists compares two netlists gate for gate (cells, input
// nets, output nets, POs) — structural bit-identity, no tolerance.
func mustEqualNetlists(t *testing.T, ctx string, na, nb *netlist.Netlist) {
	t.Helper()
	if na.NumPIs != nb.NumPIs || len(na.Gates) != len(nb.Gates) || len(na.POs) != len(nb.POs) {
		t.Fatalf("%s: netlist shape differs: PIs %d/%d gates %d/%d POs %d/%d",
			ctx, na.NumPIs, nb.NumPIs, len(na.Gates), len(nb.Gates), len(na.POs), len(nb.POs))
	}
	for gi := range na.Gates {
		ga, gb := &na.Gates[gi], &nb.Gates[gi]
		if ga.Cell != gb.Cell || ga.Output != gb.Output || len(ga.Inputs) != len(gb.Inputs) {
			t.Fatalf("%s: gate %d differs", ctx, gi)
		}
		for j := range ga.Inputs {
			if ga.Inputs[j] != gb.Inputs[j] {
				t.Fatalf("%s: gate %d input %d differs", ctx, gi, j)
			}
		}
	}
	for i := range na.POs {
		if na.POs[i] != nb.POs[i] {
			t.Fatalf("%s: PO %d differs", ctx, i)
		}
	}
}

// mustEqualResults asserts two evaluation results are bit-identical:
// metrics, governing corner, and the chosen netlist structure.
func mustEqualResults(t *testing.T, ctx string, seq, par Result) {
	t.Helper()
	if seq.DelayPS != par.DelayPS || seq.AreaUM2 != par.AreaUM2 || seq.Corner != par.Corner {
		t.Fatalf("%s: results differ: seq {%.17g %.17g %s} par {%.17g %.17g %s}",
			ctx, seq.DelayPS, seq.AreaUM2, seq.Corner, par.DelayPS, par.AreaUM2, par.Corner)
	}
	mustEqualNetlists(t, ctx, seq.Netlist, par.Netlist)
}

// mustEqualStates compares the retained per-effort STA results of two
// evaluations bit for bit — every corner's arrival and slew at every
// net, not just the headline metrics.
func mustEqualStates(t *testing.T, ctx string, seq, par *EvalState) {
	t.Helper()
	for e := 0; e < 2; e++ {
		a, b := seq.srs[e], par.srs[e]
		if a.WorstDelayPS != b.WorstDelayPS || a.WorstCorner != b.WorstCorner ||
			a.AreaUM2 != b.AreaUM2 || len(a.Corners) != len(b.Corners) {
			t.Fatalf("%s: effort %d signoff summary differs", ctx, e)
		}
		for ci := range a.Corners {
			ca, cb := &a.Corners[ci], &b.Corners[ci]
			if ca.MaxDelayPS != cb.MaxDelayPS || ca.CriticalPO != cb.CriticalPO || ca.Corner != cb.Corner {
				t.Fatalf("%s: effort %d corner %d summary differs", ctx, e, ci)
			}
			for i := range ca.ArrivalPS {
				if ca.ArrivalPS[i] != cb.ArrivalPS[i] || ca.SlewPS[i] != cb.SlewPS[i] {
					t.Fatalf("%s: effort %d corner %d net %d values differ", ctx, e, ci, i)
				}
			}
		}
		mustEqualNetlists(t, ctx, seq.maps[e].Netlist(), par.maps[e].Netlist())
	}
}

// TestParallelFullMatchesSequential drives full evaluations through
// parallel pools at several lane counts and asserts bit-identity with
// the sequential path — headline result, both efforts' netlists, and
// every corner's per-net arrivals and slews. Run under -race this also
// proves the phase decomposition is data-race-free.
func TestParallelFullMatchesSequential(t *testing.T) {
	lib := cell.Builtin()
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{{4, 40, 2}, {8, 150, 4}, {10, 400, 6}, {6, 90, 40}}
	for _, par := range []int{2, 8} {
		pool := NewPoolParallel(par)
		for si, sh := range shapes {
			g := randomAIG(rng, sh[0], sh[1], sh[2])
			seqR, seqSt, err := EvaluateState(g, lib)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			parR, parSt, err := pool.EvaluateState(g, lib)
			if err != nil {
				t.Fatalf("par=%d shape %d: %v", par, si, err)
			}
			mustEqualResults(t, "full", seqR, parR)
			mustEqualStates(t, "full", seqSt, parSt)
			// Second pass through the same pool exercises the warm
			// (fully recycled) carcasses.
			parSt.Release()
			parR2, parSt2, err := pool.EvaluateState(g, lib)
			if err != nil {
				t.Fatalf("par=%d shape %d warm: %v", par, si, err)
			}
			mustEqualResults(t, "full-warm", seqR, parR2)
			mustEqualStates(t, "full-warm", seqSt, parSt2)
			parSt2.Release()
		}
		pool.Close()
	}
}

// TestParallelDeltaMatchesSequential walks a chain of cone-local
// mutations, evaluating every delta through a sequential pool and
// parallel pools side by side, asserting each step's result and
// retained state are bit-identical. This covers the concurrent remap +
// seeded corner-parallel SignoffUpdate path end to end.
func TestParallelDeltaMatchesSequential(t *testing.T) {
	lib := cell.Builtin()
	for _, par := range []int{2, 8} {
		rng := rand.New(rand.NewSource(11))
		seqPool := NewPool()
		parPool := NewPoolParallel(par)
		g := randomAIG(rng, 8, 200, 5)
		seqR, seqSt, err := seqPool.EvaluateState(g, lib)
		if err != nil {
			t.Fatal(err)
		}
		parR, parSt, err := parPool.EvaluateState(g, lib)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, "anchor", seqR, parR)
		cur := g
		for step := 0; step < 12; step++ {
			raw := mutateParallel(cur, rng)
			next, d := aig.Rebase(cur, raw)
			nseqR, nseqSt, err := seqSt.EvaluateDelta(next, d)
			if err != nil {
				t.Fatalf("par=%d step %d sequential delta: %v", par, step, err)
			}
			nparR, nparSt, err := parSt.EvaluateDelta(next, d)
			if err != nil {
				t.Fatalf("par=%d step %d parallel delta: %v", par, step, err)
			}
			mustEqualResults(t, "delta", nseqR, nparR)
			mustEqualStates(t, "delta", nseqSt, nparSt)
			seqSt.Release()
			parSt.Release()
			cur, seqSt, parSt = next, nseqSt, nparSt
		}
		seqSt.Release()
		parSt.Release()
		parPool.Close()
	}
}

// FuzzParallelSignoff feeds fuzz-chosen graph shapes and seeds through
// a 3-lane pool and asserts bit-identity with the sequential pipeline,
// full and delta.
func FuzzParallelSignoff(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(80), uint8(3))
	f.Add(int64(99), uint8(12), uint8(200), uint8(8))
	f.Add(int64(1234), uint8(2), uint8(15), uint8(1))
	lib := cell.Builtin()
	pool := NewPoolParallel(3)
	f.Fuzz(func(t *testing.T, seed int64, pis, ands, pos uint8) {
		rng := rand.New(rand.NewSource(seed))
		// Clamp into randomAIG's supported range (its PO picker reaches
		// up to 40 literals back, so keep at least that many).
		g := randomAIG(rng, 1+int(pis)%16, 40+int(ands), 1+int(pos)%8)
		seqR, seqSt, err := EvaluateState(g, lib)
		if err != nil {
			t.Skip() // unmatchable graphs are not this fuzzer's subject
		}
		parR, parSt, err := pool.EvaluateState(g, lib)
		if err != nil {
			t.Fatalf("parallel errored where sequential succeeded: %v", err)
		}
		mustEqualResults(t, "fuzz-full", seqR, parR)
		mustEqualStates(t, "fuzz-full", seqSt, parSt)
		raw := mutateParallel(g, rng)
		next, d := aig.Rebase(g, raw)
		dseqR, dseqSt, err1 := seqSt.EvaluateDelta(next, d)
		dparR, dparSt, err2 := parSt.EvaluateDelta(next, d)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("delta error mismatch: seq %v par %v", err1, err2)
		}
		if err1 == nil {
			mustEqualResults(t, "fuzz-delta", dseqR, dparR)
			mustEqualStates(t, "fuzz-delta", dseqSt, dparSt)
			dparSt.Release()
			_ = dseqSt
		}
		parSt.Release()
	})
}
