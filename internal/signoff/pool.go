package signoff

import (
	"sync"

	"aigtimer/internal/aig"
	"aigtimer/internal/cell"
	"aigtimer/internal/crew"
	"aigtimer/internal/cut"
	"aigtimer/internal/netlist"
	"aigtimer/internal/sta"
	"aigtimer/internal/techmap"
)

// evalScratch bundles the per-call working buffers of one evaluation —
// cut enumeration, mapping, and STA scratch — so one freelist cycle
// covers the whole pipeline. A parallel scratch (pool parallelism > 1)
// additionally owns a worker crew plus per-lane, per-effort, and
// per-corner buffers; ownership within one evaluation is strict: lane
// l writes only enum[l] and its candidate buffer, effort e only tm[e],
// sta[e], and slot e of the per-effort arrays, corner task (e, ci)
// only sta[e]'s corner-ci dirty buffer and staErrs[e][ci]. Everything
// else the tasks touch is read-only for the phase's duration.
type evalScratch struct {
	cuts cut.Scratch
	// tm and sta are per-effort; the sequential path uses slot 0 for
	// both efforts (exactly the pre-parallelism behavior).
	tm  [2]techmap.Scratch
	sta [2]sta.Scratch

	// crew is the worker set of a parallel scratch; nil means this
	// scratch (and every evaluation run with it) is sequential.
	crew *crew.Crew
	// enum are the per-lane cut-enumeration scratches of the parallel
	// full path; isPrefix is the dual enumeration's shared prefix flags
	// (written per node by the owning lane).
	enum     []cut.Scratch
	isPrefix []bool
	// levelOf/order/levelOff are the level-decomposition CSR: order
	// lists the AND nodes grouped by logic level (index-ascending
	// within a level), levelOff[b] is the start of level b+1's group.
	levelOf  []int32
	order    []int32
	levelOff []int32
	cursor   []int32
	// selErrs collects selection errors per (lane, effort) at
	// selErrs[lane*2+effort]; tailErrs and staErrs collect the join and
	// per-corner errors per effort. All merged in sequential order.
	selErrs  []selErr
	tailErrs [2]error
	staErrs  [2][]error
	// Per-effort in-flight pipeline state of the parallel phases.
	mps  [2]techmap.Mapping
	nls  [2]*netlist.Netlist
	mss  [2]*techmap.State
	runs [2]sta.SignoffRun
	// Retained runner bodies so crew dispatch stays allocation-free.
	enumRun   enumRunner
	selRun    selRunner
	tailRun   tailRunner
	deltaRun  deltaRunner
	cornerRun cornerRunner
}

// Pool recycles EvalState carcasses and evaluation scratch buffers. An
// evaluation drawn from a pool reuses the arenas, mapping state,
// netlists, and STA result storage of previously Released states, so a
// retained pipeline (the annealer's incremental oracle) performs zero
// steady-state heap allocations per evaluation once the pool is warm.
//
// Results are value-identical to unpooled evaluations — recycling
// changes where storage comes from, never what is computed (recycled
// buffers are re-initialized exactly like fresh ones at every layer).
// The same holds for parallelism (NewPoolParallel): it changes how
// many cores one evaluation uses, never the result.
//
// An explicit mutex-guarded freelist rather than sync.Pool: states must
// never be dropped by GC pressure mid-cycle (the allocation guards in
// the tests depend on deterministic reuse), and the pool's high-water
// mark is bounded by the anchor store plus in-flight evaluations.
//
// The netlists inside a pooled state's results are recycled storage:
// they are valid only until the state is Released. A Pool is safe for
// concurrent use.
type Pool struct {
	mu        sync.Mutex
	par       int
	closed    bool
	states    []*EvalState
	scratches []*evalScratch
}

// NewPool returns an empty pool whose evaluations run sequentially.
func NewPool() *Pool { return NewPoolParallel(1) }

// NewPoolParallel returns an empty pool whose evaluations each use up
// to `parallelism` concurrent lanes internally (mapping efforts, STA
// corners, and per-level cut enumeration/matching); values <= 1 mean
// sequential. Results are bit-identical at every setting. A parallel
// pool's scratches own worker goroutines — Close the pool when done
// with it.
func NewPoolParallel(parallelism int) *Pool {
	if parallelism < 1 {
		parallelism = 1
	}
	return &Pool{par: parallelism}
}

// Parallelism reports the per-evaluation lane count (1 = sequential).
func (p *Pool) Parallelism() int { return p.par }

// Close stops the worker crews owned by the pool's scratches and marks
// the pool closed: scratches returned later are torn down instead of
// pooled. Evaluations already in flight finish normally; starting new
// evaluations after Close is a caller bug (their workers would be
// re-created and leak). Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	scs := p.scratches
	p.scratches = nil
	p.mu.Unlock()
	for _, sc := range scs {
		if sc.crew != nil {
			sc.crew.Close()
		}
	}
}

// getState pops a carcass or makes a fresh one, owned by this pool.
func (p *Pool) getState() *EvalState {
	p.mu.Lock()
	if n := len(p.states); n > 0 {
		st := p.states[n-1]
		p.states = p.states[:n-1]
		p.mu.Unlock()
		st.released = false
		return st
	}
	p.mu.Unlock()
	return &EvalState{pool: p}
}

func (p *Pool) getScratch() *evalScratch {
	p.mu.Lock()
	if n := len(p.scratches); n > 0 {
		sc := p.scratches[n-1]
		p.scratches = p.scratches[:n-1]
		p.mu.Unlock()
		return sc
	}
	p.mu.Unlock()
	sc := &evalScratch{}
	if p.par > 1 {
		sc.crew = crew.New(p.par)
	}
	return sc
}

func (p *Pool) putScratch(sc *evalScratch) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		if sc.crew != nil {
			sc.crew.Close()
		}
		return
	}
	p.scratches = append(p.scratches, sc)
	p.mu.Unlock()
}

// EvaluateState is signoff.EvaluateState drawing all storage from the
// pool; the returned state must be Released when dead for its storage
// to be recycled.
func (p *Pool) EvaluateState(g *aig.AIG, lib *cell.Library) (Result, *EvalState, error) {
	st := p.getState()
	sc := p.getScratch()
	r, err := evaluateInto(g, lib, st, sc)
	p.putScratch(sc)
	if err != nil {
		st.Release()
		return Result{}, nil, err
	}
	return r, st, nil
}

// Release returns the state's storage to its owning pool. It is the
// caller's guarantee that nothing references the state anymore — its
// mapping state, netlists, and STA results are all cannibalized by the
// next evaluation the pool serves. Safe on nil and on unpooled states
// (no-op); releasing the same state twice panics, since two later
// evaluations would then share storage.
func (s *EvalState) Release() {
	if s == nil || s.pool == nil {
		return
	}
	if s.released {
		panic("signoff: EvalState released twice")
	}
	s.released = true
	s.g = nil
	p := s.pool
	p.mu.Lock()
	p.states = append(p.states, s)
	p.mu.Unlock()
}
