package signoff

import (
	"sync"

	"aigtimer/internal/aig"
	"aigtimer/internal/cell"
	"aigtimer/internal/cut"
	"aigtimer/internal/sta"
	"aigtimer/internal/techmap"
)

// evalScratch bundles the per-call working buffers of one evaluation —
// cut enumeration, mapping, and STA scratch — so one freelist cycle
// covers the whole pipeline.
type evalScratch struct {
	cuts cut.Scratch
	tm   techmap.Scratch
	sta  sta.Scratch
}

// Pool recycles EvalState carcasses and evaluation scratch buffers. An
// evaluation drawn from a pool reuses the arenas, mapping state,
// netlists, and STA result storage of previously Released states, so a
// retained pipeline (the annealer's incremental oracle) performs zero
// steady-state heap allocations per evaluation once the pool is warm.
//
// Results are value-identical to unpooled evaluations — recycling
// changes where storage comes from, never what is computed (recycled
// buffers are re-initialized exactly like fresh ones at every layer).
//
// An explicit mutex-guarded freelist rather than sync.Pool: states must
// never be dropped by GC pressure mid-cycle (the allocation guards in
// the tests depend on deterministic reuse), and the pool's high-water
// mark is bounded by the anchor store plus in-flight evaluations.
//
// The netlists inside a pooled state's results are recycled storage:
// they are valid only until the state is Released. A Pool is safe for
// concurrent use.
type Pool struct {
	mu        sync.Mutex
	states    []*EvalState
	scratches []*evalScratch
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// getState pops a carcass or makes a fresh one, owned by this pool.
func (p *Pool) getState() *EvalState {
	p.mu.Lock()
	if n := len(p.states); n > 0 {
		st := p.states[n-1]
		p.states = p.states[:n-1]
		p.mu.Unlock()
		st.released = false
		return st
	}
	p.mu.Unlock()
	return &EvalState{pool: p}
}

func (p *Pool) getScratch() *evalScratch {
	p.mu.Lock()
	if n := len(p.scratches); n > 0 {
		sc := p.scratches[n-1]
		p.scratches = p.scratches[:n-1]
		p.mu.Unlock()
		return sc
	}
	p.mu.Unlock()
	return &evalScratch{}
}

func (p *Pool) putScratch(sc *evalScratch) {
	p.mu.Lock()
	p.scratches = append(p.scratches, sc)
	p.mu.Unlock()
}

// EvaluateState is signoff.EvaluateState drawing all storage from the
// pool; the returned state must be Released when dead for its storage
// to be recycled.
func (p *Pool) EvaluateState(g *aig.AIG, lib *cell.Library) (Result, *EvalState, error) {
	st := p.getState()
	sc := p.getScratch()
	r, err := evaluateInto(g, lib, st, sc)
	p.putScratch(sc)
	if err != nil {
		st.Release()
		return Result{}, nil, err
	}
	return r, st, nil
}

// Release returns the state's storage to its owning pool. It is the
// caller's guarantee that nothing references the state anymore — its
// mapping state, netlists, and STA results are all cannibalized by the
// next evaluation the pool serves. Safe on nil and on unpooled states
// (no-op); releasing the same state twice panics, since two later
// evaluations would then share storage.
func (s *EvalState) Release() {
	if s == nil || s.pool == nil {
		return
	}
	if s.released {
		panic("signoff: EvalState released twice")
	}
	s.released = true
	s.g = nil
	p := s.pool
	p.mu.Lock()
	p.states = append(p.states, s)
	p.mu.Unlock()
}
