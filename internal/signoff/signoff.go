package signoff

import (
	"aigtimer/internal/aig"
	"aigtimer/internal/cell"
	"aigtimer/internal/cut"
	"aigtimer/internal/eval"
	"aigtimer/internal/netlist"
	"aigtimer/internal/sta"
	"aigtimer/internal/techmap"
)

// Result is one ground-truth evaluation.
type Result struct {
	DelayPS float64 // slow-corner maximum delay
	AreaUM2 float64
	Netlist *netlist.Netlist
	Corner  string // governing corner name
}

// highEffort is the second mapping configuration.
var highEffort = techmap.Params{
	Cut:           cut.Params{K: 4, MaxCuts: 24},
	NominalLoadFF: 6.0,
	AreaRecovery:  true,
}

// efforts lists the mapping configurations one evaluation runs, in
// reporting order (the first wins delay/area ties).
var efforts = [2]techmap.Params{techmap.DefaultParams, highEffort}

// Evaluate maps g onto lib and returns the signoff metrics.
func Evaluate(g *aig.AIG, lib *cell.Library) (Result, error) {
	r, _, err := EvaluateState(g, lib)
	return r, err
}

// EvalState is the reusable outcome of one full signoff evaluation:
// the mapping state and multi-corner STA of both effort levels. It is
// the anchor the incremental path needs — EvaluateDelta re-evaluates a
// derived graph from it at cone-sized cost. A live EvalState is
// immutable and safe to share across goroutines; one produced by a Pool
// additionally owns recyclable storage (the cut arena, mapping states,
// netlist carcasses, and STA results) that Release hands back for the
// pool's next evaluation to cannibalize.
type EvalState struct {
	g    *aig.AIG
	maps [2]*techmap.State
	srs  [2]*sta.SignoffResult

	// arenas back the retained cut lists; cutbufs are the per-effort cut
	// tables the full path enumerates into (the delta path recycles the
	// tables held inside maps instead). Sequential evaluation uses
	// arenas[0] only; a parallel full evaluation gives each enumeration
	// lane its own arena and a parallel delta evaluation gives each
	// effort its own, so concurrent producers never contend and each
	// arena's high-water mark is deterministic (the lane->node partition
	// is a pure function of the graph). All are reset/regrown at the
	// start of each evaluation into this carcass.
	arenas  []cut.Arena
	cutbufs [2][][]cut.Cut

	pool     *Pool // owning pool; nil for unpooled states
	released bool
}

// ensureArenas makes n arenas available and resets the first n. Safe
// only at the start of an evaluation, when nothing points into them.
func (st *EvalState) ensureArenas(n int) {
	for len(st.arenas) < n {
		st.arenas = append(st.arenas, cut.Arena{})
	}
	for i := 0; i < n; i++ {
		st.arenas[i].Reset()
	}
}

// AIG returns the graph this state evaluated.
func (s *EvalState) AIG() *aig.AIG { return s.g }

// pick folds one effort's outcome into the running best using the
// signoff selection rule (slow-corner delay, area breaks ties).
func pick(best Result, i int, nl *netlist.Netlist, sr *sta.SignoffResult) Result {
	cand := Result{DelayPS: sr.WorstDelayPS, AreaUM2: sr.AreaUM2, Netlist: nl, Corner: sr.WorstCorner}
	if i == 0 || cand.DelayPS < best.DelayPS ||
		(cand.DelayPS == best.DelayPS && cand.AreaUM2 < best.AreaUM2) {
		return cand
	}
	return best
}

// growCutLists returns b resized to n entries, all nil.
func growCutLists(b [][]cut.Cut, n int) [][]cut.Cut {
	if cap(b) < n {
		return make([][]cut.Cut, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = nil
	}
	return b
}

// EvaluateState evaluates g like Evaluate and additionally returns the
// retained state that EvaluateDelta needs to evaluate derived graphs
// incrementally.
//
// Both mapping efforts share one cut enumeration: the default-effort
// cut sets (MaxCuts 8) are selected from the same pairwise merge work
// the high-effort pass (MaxCuts 24) performs, through
// cut.EnumerateDual, whose per-effort output is bit-identical to two
// independent enumerations — so the shared pass changes evaluation
// cost, never the mapping (asserted by TestEvaluateStateMatchesPerEffortMapping).
func EvaluateState(g *aig.AIG, lib *cell.Library) (Result, *EvalState, error) {
	st := &EvalState{}
	r, err := evaluateInto(g, lib, st, &evalScratch{})
	if err != nil {
		return Result{}, nil, err
	}
	return r, st, nil
}

// evaluateInto is the full-evaluation body shared by the plain and
// pooled entry points: it rebuilds st (a fresh or recycled carcass) as
// the evaluation of g, drawing retained storage from st's own arenas
// and carcasses and working buffers from sc. A scratch holding a
// worker crew (pooled, parallelism > 1) routes through the parallel
// orchestration, which produces bit-identical results.
func evaluateInto(g *aig.AIG, lib *cell.Library, st *EvalState, sc *evalScratch) (Result, error) {
	if sc.crew != nil {
		return evaluateFullParallel(g, lib, st, sc)
	}
	st.g = g
	st.ensureArenas(1)
	n := g.NumNodes()
	st.cutbufs[0] = growCutLists(st.cutbufs[0], n)
	st.cutbufs[1] = growCutLists(st.cutbufs[1], n)
	cut.EnumerateDualArena(g, efforts[0].Cut, efforts[1].Cut, st.cutbufs[0], st.cutbufs[1], &st.arenas[0], &sc.cuts)
	best := Result{}
	for i, mp := range efforts {
		nl, ms, err := techmap.MapStateWithCutsInto(g, lib, mp, st.cutbufs[i], st.maps[i], &sc.tm[0])
		if err != nil {
			return Result{}, err
		}
		sr, err := sta.SignoffInto(nl, sta.SignoffParams{}, st.srs[i])
		if err != nil {
			return Result{}, err
		}
		st.maps[i], st.srs[i] = ms, sr
		best = pick(best, i, nl, sr)
	}
	return best, nil
}

// EvaluateDelta evaluates next — a graph rebased against s's graph
// with structural delta d (aig.Rebase) — by incremental remapping and
// incremental multi-corner STA at both effort levels. The returned
// metrics and netlist are bit-identical to a from-scratch
// EvaluateState(next, lib); the cost scales with the dirty cone, not
// the graph. When s came from a Pool, the new state draws its storage
// from the same pool (and must eventually be Released).
func (s *EvalState) EvaluateDelta(next *aig.AIG, d *aig.Delta) (Result, *EvalState, error) {
	var ns *EvalState
	var sc *evalScratch
	if s.pool != nil {
		ns = s.pool.getState()
		sc = s.pool.getScratch()
		defer s.pool.putScratch(sc)
	} else {
		ns = &EvalState{}
		sc = &evalScratch{}
	}
	ns.g = next
	if sc.crew != nil {
		return evaluateDeltaParallel(s, next, d, ns, sc)
	}
	ns.ensureArenas(1)
	best := Result{}
	for i := range efforts {
		nl, ms, nm, err := techmap.RemapInto(s.maps[i], next, d, &ns.arenas[0], ns.maps[i], &sc.tm[0])
		if err != nil {
			ns.Release()
			return Result{}, nil, err
		}
		sr, err := sta.SignoffUpdateInto(s.srs[i], nl, nm, sta.SignoffParams{}, ns.srs[i], &sc.sta[0])
		if err != nil {
			ns.Release()
			return Result{}, nil, err
		}
		ns.maps[i], ns.srs[i] = ms, sr
		best = pick(best, i, nl, sr)
	}
	return best, ns, nil
}

// EvaluateBatch evaluates every graph concurrently on up to `workers`
// goroutines (GOMAXPROCS when workers <= 0) and returns per-graph results
// and errors, both in input order. Values are identical to sequential
// Evaluate calls at any worker count: the pipeline is deterministic and
// each graph is processed by exactly one worker.
func EvaluateBatch(gs []*aig.AIG, lib *cell.Library, workers int) ([]Result, []error) {
	rs := make([]Result, len(gs))
	errs := make([]error, len(gs))
	eval.ForEach(len(gs), workers, func(i int) {
		rs[i], errs[i] = Evaluate(gs[i], lib)
	})
	return rs, errs
}
