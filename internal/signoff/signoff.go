// Package signoff defines the repository's single ground-truth evaluation
// pipeline: the "technology mapping + STA" black box of the paper's
// ground-truth flow, also used to label every training sample.
//
// One evaluation runs:
//
//  1. delay-oriented structural mapping (default effort),
//  2. a second, high-effort mapping (wider priority-cut budget and a
//     heavier nominal load), and
//  3. multi-corner slew-propagating NLDM STA on both candidates,
//
// keeping the netlist with the better slow-corner delay (area breaks
// ties). The reported delay is the slow-corner maximum delay; the area is
// the chosen netlist's cell area. Centralizing this here guarantees that
// optimization flows, dataset labels, and experiment tables all agree on
// what "ground truth" means.
package signoff

import (
	"aigtimer/internal/aig"
	"aigtimer/internal/cell"
	"aigtimer/internal/cut"
	"aigtimer/internal/eval"
	"aigtimer/internal/netlist"
	"aigtimer/internal/sta"
	"aigtimer/internal/techmap"
)

// Result is one ground-truth evaluation.
type Result struct {
	DelayPS float64 // slow-corner maximum delay
	AreaUM2 float64
	Netlist *netlist.Netlist
	Corner  string // governing corner name
}

// highEffort is the second mapping configuration.
var highEffort = techmap.Params{
	Cut:           cut.Params{K: 4, MaxCuts: 24},
	NominalLoadFF: 6.0,
	AreaRecovery:  true,
}

// Evaluate maps g onto lib and returns the signoff metrics.
func Evaluate(g *aig.AIG, lib *cell.Library) (Result, error) {
	best := Result{}
	for i, mp := range []techmap.Params{techmap.DefaultParams, highEffort} {
		nl, err := techmap.Map(g, lib, mp)
		if err != nil {
			return Result{}, err
		}
		sr, err := sta.Signoff(nl, sta.SignoffParams{})
		if err != nil {
			return Result{}, err
		}
		cand := Result{DelayPS: sr.WorstDelayPS, AreaUM2: sr.AreaUM2, Netlist: nl, Corner: sr.WorstCorner}
		if i == 0 || cand.DelayPS < best.DelayPS ||
			(cand.DelayPS == best.DelayPS && cand.AreaUM2 < best.AreaUM2) {
			best = cand
		}
	}
	return best, nil
}

// EvaluateBatch evaluates every graph concurrently on up to `workers`
// goroutines (GOMAXPROCS when workers <= 0) and returns per-graph results
// and errors, both in input order. Values are identical to sequential
// Evaluate calls at any worker count: the pipeline is deterministic and
// each graph is processed by exactly one worker.
func EvaluateBatch(gs []*aig.AIG, lib *cell.Library, workers int) ([]Result, []error) {
	rs := make([]Result, len(gs))
	errs := make([]error, len(gs))
	eval.ForEach(len(gs), workers, func(i int) {
		rs[i], errs[i] = Evaluate(gs[i], lib)
	})
	return rs, errs
}
