package signoff

import (
	"math/rand"
	"testing"

	"aigtimer/internal/aig"
	"aigtimer/internal/cell"
	"aigtimer/internal/cut"
	"aigtimer/internal/sta"
	"aigtimer/internal/techmap"
)

func randomAIG(rng *rand.Rand, numPIs, numAnds, numPOs int) *aig.AIG {
	b := aig.NewBuilder(numPIs)
	lits := make([]aig.Lit, 0, numPIs+numAnds)
	for i := 0; i < numPIs; i++ {
		lits = append(lits, b.PI(i))
	}
	for len(lits) < numPIs+numAnds {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		c := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, b.And(a, c))
	}
	for i := 0; i < numPOs; i++ {
		b.AddPO(lits[len(lits)-1-rng.Intn(40)])
	}
	return b.Build().Compact()
}

func TestEvaluateBeatsOrMatchesSingleEffort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lib := cell.Builtin()
	for i := 0; i < 8; i++ {
		g := randomAIG(rng, 8, 150, 4)
		r, err := Evaluate(g, lib)
		if err != nil {
			t.Fatal(err)
		}
		// Single default-effort pipeline for comparison.
		nl, err := techmap.Map(g, lib, techmap.DefaultParams)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := sta.Signoff(nl, sta.SignoffParams{})
		if err != nil {
			t.Fatal(err)
		}
		if r.DelayPS > sr.WorstDelayPS+1e-9 {
			t.Fatalf("dual-effort evaluate worse than single: %.1f vs %.1f", r.DelayPS, sr.WorstDelayPS)
		}
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lib := cell.Builtin()
	g := randomAIG(rng, 8, 120, 4)
	r1, err := Evaluate(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evaluate(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	if r1.DelayPS != r2.DelayPS || r1.AreaUM2 != r2.AreaUM2 {
		t.Fatalf("nondeterministic: %+v vs %+v", r1, r2)
	}
	if r1.Corner == "" || r1.Netlist == nil {
		t.Fatalf("missing fields: %+v", r1)
	}
}

func TestEvaluatePreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lib := cell.Builtin()
	g := randomAIG(rng, 6, 80, 3)
	r, err := Evaluate(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	// The chosen netlist must implement g.
	pats := aig.ExhaustivePatterns(g.NumPIs())
	res := g.Simulate(pats)
	in := make([]bool, g.NumPIs())
	for m := 0; m < 1<<g.NumPIs(); m++ {
		for i := range in {
			in[i] = m>>i&1 == 1
		}
		got := r.Netlist.Eval(in)
		for i := 0; i < g.NumPOs(); i++ {
			v := res.LitValues(g.PO(i))
			if got[i] != (v[m/64]>>(m%64)&1 == 1) {
				t.Fatalf("netlist differs from AIG at minterm %d PO %d", m, i)
			}
		}
	}
}

// TestEvaluateBatchMatchesSequential: the parallel batch path must agree
// with sequential Evaluate calls, in input order, at any worker count.
func TestEvaluateBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lib := cell.Builtin()
	gs := make([]*aig.AIG, 5)
	want := make([]Result, len(gs))
	for i := range gs {
		gs[i] = randomAIG(rng, 7, 100, 3)
		r, err := Evaluate(gs[i], lib)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	for _, workers := range []int{0, 1, 3, 16} {
		rs, errs := EvaluateBatch(gs, lib, workers)
		if len(rs) != len(gs) || len(errs) != len(gs) {
			t.Fatalf("workers=%d: wrong result lengths", workers)
		}
		for i := range gs {
			if errs[i] != nil {
				t.Fatalf("workers=%d: batch[%d] error: %v", workers, i, errs[i])
			}
			if rs[i].DelayPS != want[i].DelayPS || rs[i].AreaUM2 != want[i].AreaUM2 || rs[i].Corner != want[i].Corner {
				t.Fatalf("workers=%d: batch[%d] = %+v, want %+v", workers, i, rs[i], want[i])
			}
		}
	}
}

// TestEvaluateStateMatchesPerEffortMapping asserts the dual-effort cut
// reuse is invisible: EvaluateState (one shared cut.EnumerateDual pass)
// must produce the same metrics, the same governing corner, and
// gate-for-gate the same netlist as mapping each effort with its own
// independent enumeration (techmap.MapState) and timing it.
func TestEvaluateStateMatchesPerEffortMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lib := cell.Builtin()
	efforts := []techmap.Params{
		techmap.DefaultParams,
		{Cut: cut.Params{K: 4, MaxCuts: 24}, NominalLoadFF: 6.0, AreaRecovery: true},
	}
	for i := 0; i < 6; i++ {
		g := randomAIG(rng, 8, 160, 4)
		got, st, err := EvaluateState(g, lib)
		if err != nil {
			t.Fatal(err)
		}
		want := Result{}
		for ei, mp := range efforts {
			nl, _, err := techmap.MapState(g, lib, mp)
			if err != nil {
				t.Fatal(err)
			}
			sr, err := sta.Signoff(nl, sta.SignoffParams{})
			if err != nil {
				t.Fatal(err)
			}
			want = pick(want, ei, nl, sr)
			// The retained per-effort state must also map identically —
			// it anchors later incremental evaluations.
			stNl := st.maps[ei].Netlist()
			if len(stNl.Gates) != len(nl.Gates) {
				t.Fatalf("graph %d effort %d: %d vs %d gates", i, ei, len(stNl.Gates), len(nl.Gates))
			}
			for gi := range nl.Gates {
				a, b := stNl.Gates[gi], nl.Gates[gi]
				if a.Cell != b.Cell || len(a.Inputs) != len(b.Inputs) {
					t.Fatalf("graph %d effort %d gate %d differs", i, ei, gi)
				}
				for j := range a.Inputs {
					if a.Inputs[j] != b.Inputs[j] {
						t.Fatalf("graph %d effort %d gate %d input %d differs", i, ei, gi, j)
					}
				}
			}
		}
		if got.DelayPS != want.DelayPS || got.AreaUM2 != want.AreaUM2 || got.Corner != want.Corner {
			t.Fatalf("graph %d: shared-pass result (%v %v %s) vs independent (%v %v %s)",
				i, got.DelayPS, got.AreaUM2, got.Corner, want.DelayPS, want.AreaUM2, want.Corner)
		}
	}
}
