package sta_test

import (
	"math/rand"
	"testing"

	"aigtimer/internal/aig"
	"aigtimer/internal/cell"
	"aigtimer/internal/netlist"
	"aigtimer/internal/sta"
	"aigtimer/internal/techmap"
)

// TestSignoffUpdateZeroAllocs guards the incremental STA worklist path:
// with a recycled result carcass and a caller-owned Scratch, a
// steady-state SignoffUpdateInto must not touch the heap.
func TestSignoffUpdateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := aig.NewBuilder(6)
	lits := make([]aig.Lit, 0, 6+150)
	for i := 0; i < 6; i++ {
		lits = append(lits, b.PI(i))
	}
	for len(lits) < cap(lits) {
		x := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		y := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, b.And(x, y))
	}
	b.AddPO(lits[len(lits)-1])
	b.AddPO(lits[len(lits)-5])
	g := b.Build().Compact()

	nl, err := techmap.Map(g, cell.Builtin(), techmap.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	p := sta.SignoffParams{}
	prev, err := sta.Signoff(nl, p)
	if err != nil {
		t.Fatal(err)
	}
	spare, err := sta.Signoff(nl, p)
	if err != nil {
		t.Fatal(err)
	}
	// Identity correspondence: the same netlist re-analyzed, the pure
	// seeding-and-convergence shape of the worklist pass.
	nm := make(netlist.NetMap, nl.NumNets())
	for i := range nm {
		nm[i] = netlist.NetID(i)
	}
	sc := &sta.Scratch{}
	// Warm the scratch once.
	res, err := sta.SignoffUpdateInto(prev, nl, nm, p, spare, sc)
	if err != nil {
		t.Fatal(err)
	}
	prev, spare = res, prev
	avg := testing.AllocsPerRun(50, func() {
		r, err := sta.SignoffUpdateInto(prev, nl, nm, p, spare, sc)
		if err != nil {
			t.Fatal(err)
		}
		prev, spare = r, prev
	})
	if avg != 0 {
		t.Fatalf("SignoffUpdateInto allocates %.1f objects per run, want 0", avg)
	}
	if prev.WorstDelayPS <= 0 {
		t.Fatal("degenerate analysis")
	}
}
