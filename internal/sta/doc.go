// Package sta performs static timing analysis on mapped netlists, at
// two fidelity levels.
//
// The basic analyzer (Analyze) uses the standard linear (load-dependent)
// delay model for early-stage analysis: a gate's pin-to-output delay is
//
//	delay = intrinsic + drive · load(output net)
//
// where the load sums the input capacitance of every reader pin, a wire
// capacitance per fanout branch, and a fixed output load per primary
// output. Arrival times propagate in topological order; required times
// propagate backwards from the latest PO, yielding per-net slack and the
// critical path.
//
// The signoff analyzer (Signoff) is the accurate variant the
// ground-truth flow pays for at every iteration: NLDM table lookup with
// slew propagation, swept over process corners, the slow corner
// governing the reported delay. This is the "STA" step the paper runs
// after technology mapping to obtain ground-truth maximum delay.
//
// # Determinism and the incremental contract
//
// Both analyzers are deterministic functions of (netlist, parameters):
// equal inputs time identically, the property the evaluation layer's
// memoization and the distributed sweep's merges rely on.
//
// Update (and SignoffUpdate for the multi-corner variant) repropagates a
// base analysis through a changed region only: seeded from the gates
// whose nets changed, a worklist re-times arrivals and slews forward
// until values converge back onto the base, sharing untouched loads with
// it. The contract is exactness — updated results are bit-identical to
// analyzing the new netlist from scratch — which is what entitles
// signoff.EvaluateDelta to feed them into trajectories that must match
// full evaluation.
//
// Corners are independent by construction, and BeginSignoff /
// BeginSignoffUpdate expose that: they split a multi-corner run into a
// shared setup plus per-corner Corner steps that callers may execute on
// separate goroutines, each against caller-owned scratch. Finish stitches
// the per-corner results together in corner order, so a parallel run is
// bit-identical to the sequential Signoff / SignoffUpdate it decomposes —
// the entry points signoff's parallel evaluation pool drives.
package sta
