// Incremental STA. After an incremental remap, most of the netlist is
// gate-for-gate identical to the previously analyzed one (the
// correspondence is a netlist.NetMap); arrival times and slews only
// move inside the remapped region and through whatever fanout cone its
// new loads and arrivals reach. Update and SignoffUpdate seed the new
// analysis with the previous per-net values and repropagate only
// through that changed frontier, stopping as soon as recomputed values
// converge with the seeded ones.
//
// Exactness. Both functions return results bit-identical to running
// Analyze / Signoff from scratch on the new netlist. The argument is
// the standard memoized-fixed-point one on a DAG: a gate is skipped
// only when its driver is the same cell with corresponding inputs, its
// output load equals the previous load, and no input net's value moved
// away from its seeded copy — in which case recomputing it would
// reproduce the copy verbatim (the per-gate evaluation step is shared
// code with the full pass). The summary (max delay, critical PO,
// required times) is rederived with the same code as the full pass.
package sta

import (
	"aigtimer/internal/netlist"
)

// seedable reports whether prev can seed an incremental signoff of nl
// under p: the bookkeeping must be present, the correspondence sized
// for nl, and the analysis parameters (input slew, corner list)
// identical — seeded values from a different-parameter analysis would
// silently mix corners instead of failing.
func seedable(prev *SignoffResult, nl *netlist.Netlist, prevOf netlist.NetMap, p SignoffParams) bool {
	if prev == nil || prev.LoadsFF == nil || len(prevOf) != nl.NumNets() ||
		prev.InputSlewPS != p.InputSlewPS || len(prev.Corners) != len(p.Corners) {
		return false
	}
	for i := range p.Corners {
		if prev.Corners[i].Corner != p.Corners[i] {
			return false
		}
	}
	return true
}

// Update incrementally re-times nl, a netlist derived from the one
// prev analyzed, under the plain linear delay model. prevOf maps each
// net of nl to its counterpart in prev.Netlist (-1 where the driver
// changed; see netlist.NetMap). The result is bit-identical to
// Analyze(nl); only gates in the changed fanout frontier are
// re-evaluated. A prev without load bookkeeping (from a version predating
// incremental STA) degrades safely to a full Analyze.
func Update(prev *Result, nl *netlist.Netlist, prevOf netlist.NetMap) *Result {
	if prev == nil || prev.LoadsFF == nil || len(prevOf) != nl.NumNets() {
		return Analyze(nl)
	}
	numNets := nl.NumNets()
	r := &Result{
		Netlist:    nl,
		ArrivalPS:  make([]float64, numNets),
		RequiredPS: make([]float64, numNets),
		GateDelay:  make([]float64, len(nl.Gates)),
		LoadsFF:    make([]float64, numNets),
		AreaUM2:    nl.AreaUM2(),
		CriticalPO: -1,
	}
	netLoads(nl, r.LoadsFF)
	// Seed from the previous analysis and mark the frontier: gates whose
	// driver changed (no correspondence) or whose output load moved.
	dirty := make([]bool, len(nl.Gates))
	prevPIs := prev.Netlist.NumPIs
	for gi := range nl.Gates {
		out := nl.Gates[gi].Output
		pn := prevOf[out]
		if pn < 0 {
			dirty[gi] = true
			continue
		}
		r.ArrivalPS[out] = prev.ArrivalPS[pn]
		r.GateDelay[gi] = prev.GateDelay[int(pn)-prevPIs]
		if r.LoadsFF[out] != prev.LoadsFF[pn] {
			dirty[gi] = true
		}
	}
	// Repropagate in topological (gate index) order; pushes only go
	// forward because a gate's output net is above all its input nets.
	for gi := range nl.Gates {
		if !dirty[gi] {
			continue
		}
		g := &nl.Gates[gi]
		d := g.Cell.DelayPS(r.LoadsFF[g.Output])
		arr := 0.0
		for _, in := range g.Inputs {
			if a := r.ArrivalPS[in]; a > arr {
				arr = a
			}
		}
		r.GateDelay[gi] = d
		if na := arr + d; na != r.ArrivalPS[g.Output] {
			r.ArrivalPS[g.Output] = na
			for _, ri := range nl.Fanouts(g.Output) {
				dirty[ri] = true
			}
		}
	}
	r.finishPasses()
	return r
}

// SignoffUpdate incrementally re-times nl at every corner, seeding from
// prev through the prevOf correspondence. The result is bit-identical
// to Signoff(nl, p). Only gates in the changed fanout frontier pay NLDM
// table lookups; converged regions keep their seeded arrivals and
// slews. A prev that cannot seed this analysis — produced under
// different parameters (corners, input slew) or without load
// bookkeeping — degrades safely to a full Signoff.
func SignoffUpdate(prev *SignoffResult, nl *netlist.Netlist, prevOf netlist.NetMap, p SignoffParams) (*SignoffResult, error) {
	return SignoffUpdateInto(prev, nl, prevOf, p, nil, nil)
}

// SignoffUpdateInto is SignoffUpdate recycling a dead result's storage
// and a caller-owned worklist Scratch (either may be nil to allocate
// fresh). A retained pipeline that reuses both performs zero steady-state
// allocations here. The result is bit-identical to SignoffUpdate's; the
// caller must guarantee nothing references recycle anymore.
func SignoffUpdateInto(prev *SignoffResult, nl *netlist.Netlist, prevOf netlist.NetMap, p SignoffParams, recycle *SignoffResult, sc *Scratch) (*SignoffResult, error) {
	r := BeginSignoffUpdate(prev, nl, prevOf, p, recycle, sc)
	for ci := 0; ci < r.NumCorners(); ci++ {
		if err := r.Corner(ci); err != nil {
			return nil, err
		}
	}
	return r.Finish(), nil
}
