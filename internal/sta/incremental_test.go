package sta

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"aigtimer/internal/aig"
	"aigtimer/internal/cell"
	"aigtimer/internal/netlist"
	"aigtimer/internal/techmap"
)

// sameResult compares two plain STA results field by field (exact
// float equality — the incremental contract is bit-identity).
func sameResult(t *testing.T, got, want *Result) {
	t.Helper()
	if got.MaxDelayPS != want.MaxDelayPS || got.CriticalPO != want.CriticalPO || got.AreaUM2 != want.AreaUM2 {
		t.Fatalf("summary differs: got (%v, %d, %v) want (%v, %d, %v)",
			got.MaxDelayPS, got.CriticalPO, got.AreaUM2, want.MaxDelayPS, want.CriticalPO, want.AreaUM2)
	}
	for name, pair := range map[string][2][]float64{
		"arrival":  {got.ArrivalPS, want.ArrivalPS},
		"required": {got.RequiredPS, want.RequiredPS},
		"delay":    {got.GateDelay, want.GateDelay},
		"loads":    {got.LoadsFF, want.LoadsFF},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Fatalf("%s slices differ", name)
		}
	}
}

func sameSignoff(t *testing.T, got, want *SignoffResult) {
	t.Helper()
	if got.WorstDelayPS != want.WorstDelayPS || got.WorstCorner != want.WorstCorner || got.AreaUM2 != want.AreaUM2 {
		t.Fatalf("signoff summary differs: got (%v, %s) want (%v, %s)",
			got.WorstDelayPS, got.WorstCorner, want.WorstDelayPS, want.WorstCorner)
	}
	if len(got.Corners) != len(want.Corners) {
		t.Fatalf("corner count differs")
	}
	for i := range got.Corners {
		g, w := &got.Corners[i], &want.Corners[i]
		if g.MaxDelayPS != w.MaxDelayPS || g.CriticalPO != w.CriticalPO {
			t.Fatalf("corner %s summary differs", g.Corner.Name)
		}
		if !reflect.DeepEqual(g.ArrivalPS, w.ArrivalPS) || !reflect.DeepEqual(g.SlewPS, w.SlewPS) {
			t.Fatalf("corner %s per-net values differ", g.Corner.Name)
		}
	}
}

// remapPair maps prev, mutates it, and returns the previous state's
// netlist analysis inputs plus the remapped netlist and correspondence.
func remapPair(t *testing.T, rng *rand.Rand, ands int) (prevNl, nextNl *netlist.Netlist, nm netlist.NetMap) {
	t.Helper()
	lib := cell.Builtin()
	prev := randomAIG(rng, 5+rng.Intn(4), ands, 2+rng.Intn(3))
	_, st, err := techmap.MapState(prev, lib, techmap.DefaultParams)
	if err != nil {
		t.Fatalf("MapState: %v", err)
	}
	raw := mutateForTest(prev, rng)
	next, d := aig.Rebase(prev, raw)
	nl, _, netmap, err := techmap.Remap(st, next, d)
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	return st.Netlist(), nl, netmap
}

// mutateForTest re-strashes with occasional local restructuring.
func mutateForTest(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	nb := aig.NewBuilder(g.NumPIs())
	m := make([]aig.Lit, g.NumNodes())
	m[0] = aig.ConstFalse
	for i := 1; i <= g.NumPIs(); i++ {
		m[i] = nb.PI(i - 1)
	}
	g.TopoForEachAnd(func(n int32, f0, f1 aig.Lit) {
		a := m[f0.Node()].NotIf(f0.IsCompl())
		c := m[f1.Node()].NotIf(f1.IsCompl())
		if rng.Intn(10) == 0 {
			m[n] = nb.Or(a.Not(), c.Not()).Not()
		} else {
			m[n] = nb.And(a, c)
		}
	})
	for _, po := range g.POs() {
		nb.AddPO(m[po.Node()].NotIf(po.IsCompl()))
	}
	return nb.Build().Compact()
}

func TestUpdateMatchesAnalyze(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		prevNl, nextNl, nm := remapPair(t, rng, 40+rng.Intn(120))
		prevRes := Analyze(prevNl)
		got := Update(prevRes, nextNl, nm)
		want := Analyze(nextNl)
		sameResult(t, got, want)
	}
}

func TestSignoffUpdateMatchesSignoff(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		prevNl, nextNl, nm := remapPair(t, rng, 40+rng.Intn(120))
		prevRes, err := Signoff(prevNl, SignoffParams{})
		if err != nil {
			t.Fatalf("Signoff(prev): %v", err)
		}
		got, err := SignoffUpdate(prevRes, nextNl, nm, SignoffParams{})
		if err != nil {
			t.Fatalf("SignoffUpdate: %v", err)
		}
		want, err := Signoff(nextNl, SignoffParams{})
		if err != nil {
			t.Fatalf("Signoff(next): %v", err)
		}
		sameSignoff(t, got, want)
	}
}

func TestUpdateDegradesWithoutState(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	_, nextNl, nm := remapPair(t, rng, 60)
	// Nil prev and stale correspondences must fall back to full analysis.
	want := Analyze(nextNl)
	sameResult(t, Update(nil, nextNl, nm), want)
	sameResult(t, Update(&Result{}, nextNl, nm), want)
	sameResult(t, Update(want, nextNl, nil), want)
}

func TestSignoffUpdateRejectsMismatchedParams(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	prevNl, nextNl, nm := remapPair(t, rng, 60)
	prevRes, err := Signoff(prevNl, SignoffParams{})
	if err != nil {
		t.Fatalf("Signoff(prev): %v", err)
	}
	// Same corner count, different scales / slew: must fall back to a
	// full analysis under the NEW parameters, never mix corner sets.
	for _, p := range []SignoffParams{
		{InputSlewPS: 35},
		{Corners: []cell.Corner{{Name: "A", Scale: 0.9}, {Name: "B", Scale: 1}, {Name: "C", Scale: 1.3}}},
	} {
		got, err := SignoffUpdate(prevRes, nextNl, nm, p)
		if err != nil {
			t.Fatalf("SignoffUpdate: %v", err)
		}
		want, err := Signoff(nextNl, p)
		if err != nil {
			t.Fatalf("Signoff(next): %v", err)
		}
		sameSignoff(t, got, want)
	}
}

func TestUpdateSlackFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	prevNl, nextNl, nm := remapPair(t, rng, 80)
	prevRes := Analyze(prevNl)
	got := Update(prevRes, nextNl, nm)
	for _, po := range nextNl.POs {
		if s := got.SlackPS(po); math.IsInf(s, 0) || s > 1e-9 && s != got.RequiredPS[po]-got.ArrivalPS[po] {
			t.Fatalf("bad PO slack %v", s)
		}
	}
}
