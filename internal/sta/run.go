package sta

import (
	"aigtimer/internal/netlist"
)

// SignoffRun is an in-flight signoff analysis split into independently
// runnable corner passes, the stepwise face of SignoffInto and
// SignoffUpdateInto: Begin does the corner-independent work (loads,
// frontier seeding, defaulting), the caller invokes Corner once per
// corner index, and Finish derives the governing-corner summary.
// Driven sequentially in corner order it is bit-identical to the Into
// entry points — they are implemented on top of it. Its reason to
// exist is that corners are data-independent by construction (they
// share only read-only state: the netlist, the loads, the seed flags,
// the previous result), so a caller may run Corner calls concurrently
// on distinct goroutines and still get the sequential answer; each
// corner writes only its own CornerResult and its own dirty buffer.
// The deterministic merge is Finish plus the caller's error ordering:
// Finish folds corners in list order, so the aggregate never depends
// on completion order.
type SignoffRun struct {
	res    *SignoffResult
	nl     *netlist.Netlist
	p      SignoffParams
	prev   *SignoffResult
	prevOf netlist.NetMap
	sc     *Scratch
	full   bool
}

// BeginSignoff starts a stepwise full signoff of nl, recycling a dead
// result's storage (nil allocates fresh; see SignoffInto). It also
// warms the netlist's lazily built fanout index so concurrent Corner
// calls touch only immutable state.
func BeginSignoff(nl *netlist.Netlist, p SignoffParams, recycle *SignoffResult) SignoffRun {
	p = p.withDefaults()
	res := recycleSignoff(recycle, nl.NumNets(), len(p.Corners))
	res.Netlist, res.AreaUM2, res.InputSlewPS = nl, nl.AreaUM2(), p.InputSlewPS
	netLoads(nl, res.LoadsFF)
	return SignoffRun{res: res, nl: nl, p: p, full: true}
}

// BeginSignoffUpdate starts a stepwise incremental signoff of nl seeded
// from prev through the prevOf correspondence (see SignoffUpdateInto
// for the seeding contract and recycle/sc recycling; sc may be nil to
// allocate fresh). A prev that cannot seed this analysis degrades to
// BeginSignoff — the run is then a full one, still corner-steppable.
// prevOf and prev must stay unmodified until the last Corner call
// returns.
func BeginSignoffUpdate(prev *SignoffResult, nl *netlist.Netlist, prevOf netlist.NetMap, p SignoffParams, recycle *SignoffResult, sc *Scratch) SignoffRun {
	p = p.withDefaults()
	if !seedable(prev, nl, prevOf, p) {
		return BeginSignoff(nl, p, recycle)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	res := recycleSignoff(recycle, nl.NumNets(), len(p.Corners))
	res.Netlist, res.AreaUM2, res.InputSlewPS = nl, nl.AreaUM2(), p.InputSlewPS
	netLoads(nl, res.LoadsFF)
	// The frontier seed is corner-independent: correspondence and loads.
	sc.seed = growBools(sc.seed, len(nl.Gates))
	seed := sc.seed
	for gi := range nl.Gates {
		out := nl.Gates[gi].Output
		pn := prevOf[out]
		seed[gi] = pn < 0 || res.LoadsFF[out] != prev.LoadsFF[pn]
	}
	sc.growCornerDirty(len(p.Corners), len(nl.Gates))
	return SignoffRun{res: res, nl: nl, p: p, prev: prev, prevOf: prevOf, sc: sc}
}

// NumCorners returns the number of corner passes the run analyzes.
func (r *SignoffRun) NumCorners() int { return len(r.p.Corners) }

// Corner analyzes corner index ci (full pass or seeded repropagation,
// matching how the run began). Distinct corner indices may run
// concurrently; a given index must run exactly once. The returned
// error is this corner's analysis failure — when collecting from
// concurrent corners, the caller picks the lowest-index error to match
// the sequential contract.
func (r *SignoffRun) Corner(ci int) error {
	cr := &r.res.Corners[ci]
	corner := r.p.Corners[ci]
	if r.full {
		return analyzeCorner(r.nl, cr, corner, r.p.InputSlewPS, r.res.LoadsFF)
	}
	nl := r.nl
	pc := &r.prev.Corners[ci]
	cr.Corner = corner
	for i := 0; i < nl.NumPIs; i++ {
		cr.SlewPS[i] = r.p.InputSlewPS
	}
	seed, dirty := r.sc.seed, r.sc.cornerDirty[ci]
	for gi := range nl.Gates {
		dirty[gi] = seed[gi]
		out := nl.Gates[gi].Output
		if pn := r.prevOf[out]; pn >= 0 {
			cr.ArrivalPS[out] = pc.ArrivalPS[pn]
			cr.SlewPS[out] = pc.SlewPS[pn]
		}
	}
	for gi := range nl.Gates {
		if !dirty[gi] {
			continue
		}
		out := nl.Gates[gi].Output
		arr, slew, err := gateCornerEval(nl, cr.ArrivalPS, cr.SlewPS, gi, corner, r.p.InputSlewPS, r.res.LoadsFF)
		if err != nil {
			return err
		}
		if arr != cr.ArrivalPS[out] || slew != cr.SlewPS[out] {
			cr.ArrivalPS[out] = arr
			cr.SlewPS[out] = slew
			for _, ri := range nl.Fanouts(out) {
				dirty[ri] = true
			}
		}
	}
	for i, po := range nl.POs {
		if a := cr.ArrivalPS[po]; cr.CriticalPO < 0 || a > cr.MaxDelayPS {
			cr.MaxDelayPS = a
			cr.CriticalPO = i
		}
	}
	return nil
}

// Finish aggregates the per-corner results into the governing-corner
// summary and returns the completed result. Call it only after every
// Corner call has returned without error.
func (r *SignoffRun) Finish() *SignoffResult {
	r.res.aggregate()
	return r.res
}
