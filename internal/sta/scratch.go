package sta

// Scratch holds the incremental passes' per-call worklist buffers (the
// corner-independent frontier seed and one dirty-flag buffer per
// corner), reused across calls so a retained evaluation pipeline
// performs no steady-state allocations in STA. A Scratch serves one
// update at a time; within that update, each corner owns its own dirty
// buffer, which is what lets SignoffRun.Corner calls run concurrently.
type Scratch struct {
	seed        []bool
	cornerDirty [][]bool
}

// growCornerDirty makes one numGates-sized dirty buffer per corner
// available in sc.cornerDirty.
func (sc *Scratch) growCornerDirty(numCorners, numGates int) {
	for len(sc.cornerDirty) < numCorners {
		sc.cornerDirty = append(sc.cornerDirty, nil)
	}
	for ci := 0; ci < numCorners; ci++ {
		sc.cornerDirty[ci] = growBools(sc.cornerDirty[ci], numGates)
	}
}

// growBools returns b resized to n elements, all false.
func growBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// growF64 returns b resized to n elements, all zero — the recycled
// equivalent of make([]float64, n), so recycled results are
// bit-identical to freshly allocated ones by construction.
func growF64(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

// recycleSignoff returns a SignoffResult shell with storage reused from
// recycle (which must be dead: no other holder) sized for numNets nets
// and numCorners corners. A nil recycle allocates everything fresh; in
// both cases the per-net slices are zeroed like fresh allocations.
func recycleSignoff(recycle *SignoffResult, numNets, numCorners int) *SignoffResult {
	res := recycle
	if res == nil {
		res = &SignoffResult{}
	}
	prev := res.Corners[:cap(res.Corners)]
	corners := res.Corners[:0]
	if cap(corners) < numCorners {
		corners = make([]CornerResult, 0, numCorners)
	}
	// Reuse each previous corner slot's per-net slices; slots beyond the
	// previous corner count start fresh.
	for i := 0; i < numCorners; i++ {
		var cr CornerResult
		if i < len(prev) {
			cr.ArrivalPS = growF64(prev[i].ArrivalPS, numNets)
			cr.SlewPS = growF64(prev[i].SlewPS, numNets)
		} else {
			cr.ArrivalPS = make([]float64, numNets)
			cr.SlewPS = make([]float64, numNets)
		}
		cr.CriticalPO = -1
		corners = append(corners, cr)
	}
	loads := growF64(res.LoadsFF, numNets)
	*res = SignoffResult{Corners: corners, LoadsFF: loads}
	return res
}
