package sta

import (
	"fmt"

	"aigtimer/internal/cell"
	"aigtimer/internal/netlist"
)

// Signoff-grade STA: NLDM table lookup with slew propagation, swept over
// process corners. This is the expensive, accurate analysis that the
// ground-truth optimization flow pays for at every iteration — the cost
// the paper's learned predictor amortizes away.

// SignoffParams configures signoff analysis.
type SignoffParams struct {
	// Corners are the process corners analyzed; the slow corner governs
	// the reported delay. Defaults to cell.SignoffCorners.
	Corners []cell.Corner
	// InputSlewPS is the transition time assumed at every primary
	// input, in picoseconds. Defaults to 20 ps.
	InputSlewPS float64
}

// CornerResult is the analysis at one process corner.
type CornerResult struct {
	// Corner identifies the process corner (name and delay scale).
	Corner cell.Corner
	// ArrivalPS and SlewPS are the per-net latest arrival time and
	// propagated transition time at this corner, indexed by NetID.
	ArrivalPS []float64
	SlewPS    []float64
	// MaxDelayPS is the maximum arrival over all POs at this corner;
	// CriticalPO is the PO index realizing it (-1 without POs).
	MaxDelayPS float64
	CriticalPO int
}

// SignoffResult aggregates all corners.
type SignoffResult struct {
	// Netlist is the analyzed design.
	Netlist *netlist.Netlist
	// Corners holds one CornerResult per analyzed corner, in the order
	// of SignoffParams.Corners.
	Corners []CornerResult
	// WorstDelayPS is the maximum delay over all corners (the slow
	// corner governs); WorstCorner names the governing corner.
	WorstDelayPS float64
	WorstCorner  string
	// AreaUM2 is a convenience copy of the netlist cell area.
	AreaUM2 float64
	// LoadsFF is the capacitive load of every gate-output net, shared
	// by all corners (loads are corner-independent); primary-input net
	// entries are left 0. SignoffUpdate compares these against a
	// previous analysis to decide which gates to re-evaluate.
	LoadsFF []float64
	// InputSlewPS is the primary-input transition time the analysis
	// assumed; SignoffUpdate refuses to seed from a result produced
	// under different parameters.
	InputSlewPS float64
}

// Signoff runs slew-propagating NLDM STA at every corner.
func Signoff(nl *netlist.Netlist, p SignoffParams) (*SignoffResult, error) {
	return SignoffInto(nl, p, nil)
}

// SignoffInto is Signoff recycling a dead result's storage (the per-net
// and per-corner slices are reused in place; nil allocates fresh). The
// returned result is bit-identical to Signoff's: recycled slices are
// zeroed exactly like fresh allocations. The caller must guarantee
// nothing references recycle anymore.
func SignoffInto(nl *netlist.Netlist, p SignoffParams, recycle *SignoffResult) (*SignoffResult, error) {
	r := BeginSignoff(nl, p, recycle)
	for ci := 0; ci < r.NumCorners(); ci++ {
		if err := r.Corner(ci); err != nil {
			return nil, err
		}
	}
	return r.Finish(), nil
}

// withDefaults fills the zero-value fields; Signoff and SignoffUpdate
// must default identically for incremental results to be exact.
func (p SignoffParams) withDefaults() SignoffParams {
	if p.Corners == nil {
		p.Corners = cell.SignoffCorners
	}
	if p.InputSlewPS <= 0 {
		p.InputSlewPS = 20
	}
	return p
}

// aggregate derives the governing corner summary from the per-corner
// results; shared by Signoff and SignoffUpdate.
func (res *SignoffResult) aggregate() {
	res.WorstDelayPS, res.WorstCorner = 0, ""
	for _, cr := range res.Corners {
		if cr.MaxDelayPS > res.WorstDelayPS {
			res.WorstDelayPS = cr.MaxDelayPS
			res.WorstCorner = cr.Corner.Name
		}
	}
}

// netLoads computes the load of every gate-output net into loads (length
// NumNets, zeroed); loads are corner-independent, so all corners share
// the slice.
func netLoads(nl *netlist.Netlist, loads []float64) {
	for gi := range nl.Gates {
		out := nl.Gates[gi].Output
		loads[out] = nl.LoadFF(out)
	}
}

// analyzeCorner runs the full forward pass at one corner into cr, whose
// per-net slices are pre-sized and zeroed.
func analyzeCorner(nl *netlist.Netlist, cr *CornerResult, corner cell.Corner, inputSlew float64, loads []float64) error {
	cr.Corner = corner
	for i := 0; i < nl.NumPIs; i++ {
		cr.SlewPS[i] = inputSlew
	}
	for gi := range nl.Gates {
		g := &nl.Gates[gi]
		arr, slew, err := gateCornerEval(nl, cr.ArrivalPS, cr.SlewPS, gi, corner, inputSlew, loads)
		if err != nil {
			return err
		}
		cr.ArrivalPS[g.Output] = arr
		cr.SlewPS[g.Output] = slew
	}
	for i, po := range nl.POs {
		if a := cr.ArrivalPS[po]; cr.CriticalPO < 0 || a > cr.MaxDelayPS {
			cr.MaxDelayPS = a
			cr.CriticalPO = i
		}
	}
	return nil
}

// gateCornerEval computes one gate's output (arrival, slew) at a corner
// from the current per-net values — the single evaluation step shared
// verbatim by the full corner pass and the incremental update, so both
// produce bit-identical numbers.
func gateCornerEval(nl *netlist.Netlist, arrival, slews []float64, gi int,
	corner cell.Corner, inputSlew float64, loads []float64) (float64, float64, error) {
	g := &nl.Gates[gi]
	c := g.Cell
	if c.NLDM == nil {
		return 0, 0, fmt.Errorf("sta: cell %s has no NLDM tables", c.Name)
	}
	load := loads[g.Output]
	// Worst-slew merging: the latest-arriving transition is assumed
	// to carry the worst slew seen at any pin (a standard
	// conservative simplification of per-arc analysis).
	arr, slew := 0.0, inputSlew
	for _, in := range g.Inputs {
		if a := arrival[in]; a > arr {
			arr = a
		}
		if s := slews[in]; s > slew {
			slew = s
		}
	}
	d := c.NLDM.Delay.Lookup(slew, load) * corner.Scale
	return arr + d, c.NLDM.SlewOut.Lookup(slew, load) * corner.Scale, nil
}
