package sta

import (
	"fmt"

	"aigtimer/internal/cell"
	"aigtimer/internal/netlist"
)

// Signoff-grade STA: NLDM table lookup with slew propagation, swept over
// process corners. This is the expensive, accurate analysis that the
// ground-truth optimization flow pays for at every iteration — the cost
// the paper's learned predictor amortizes away.

// SignoffParams configures signoff analysis.
type SignoffParams struct {
	Corners     []cell.Corner // default: cell.SignoffCorners
	InputSlewPS float64       // slew at primary inputs; default 20 ps
}

// CornerResult is the analysis at one process corner.
type CornerResult struct {
	Corner     cell.Corner
	ArrivalPS  []float64
	SlewPS     []float64
	MaxDelayPS float64
	CriticalPO int
}

// SignoffResult aggregates all corners.
type SignoffResult struct {
	Netlist      *netlist.Netlist
	Corners      []CornerResult
	WorstDelayPS float64 // max-delay over corners (the slow corner governs)
	WorstCorner  string
	AreaUM2      float64
}

// Signoff runs slew-propagating NLDM STA at every corner.
func Signoff(nl *netlist.Netlist, p SignoffParams) (*SignoffResult, error) {
	if p.Corners == nil {
		p.Corners = cell.SignoffCorners
	}
	if p.InputSlewPS <= 0 {
		p.InputSlewPS = 20
	}
	res := &SignoffResult{Netlist: nl, AreaUM2: nl.AreaUM2()}
	for _, corner := range p.Corners {
		cr, err := analyzeCorner(nl, corner, p.InputSlewPS)
		if err != nil {
			return nil, err
		}
		res.Corners = append(res.Corners, cr)
		if cr.MaxDelayPS > res.WorstDelayPS {
			res.WorstDelayPS = cr.MaxDelayPS
			res.WorstCorner = corner.Name
		}
	}
	return res, nil
}

func analyzeCorner(nl *netlist.Netlist, corner cell.Corner, inputSlew float64) (CornerResult, error) {
	numNets := nl.NumNets()
	cr := CornerResult{
		Corner:     corner,
		ArrivalPS:  make([]float64, numNets),
		SlewPS:     make([]float64, numNets),
		CriticalPO: -1,
	}
	for i := 0; i < nl.NumPIs; i++ {
		cr.SlewPS[i] = inputSlew
	}
	for gi := range nl.Gates {
		g := &nl.Gates[gi]
		c := g.Cell
		if c.NLDM == nil {
			return cr, fmt.Errorf("sta: cell %s has no NLDM tables", c.Name)
		}
		load := nl.LoadFF(g.Output)
		// Worst-slew merging: the latest-arriving transition is assumed
		// to carry the worst slew seen at any pin (a standard
		// conservative simplification of per-arc analysis).
		arr, slew := 0.0, inputSlew
		for _, in := range g.Inputs {
			if a := cr.ArrivalPS[in]; a > arr {
				arr = a
			}
			if s := cr.SlewPS[in]; s > slew {
				slew = s
			}
		}
		d := c.NLDM.Delay.Lookup(slew, load) * corner.Scale
		cr.ArrivalPS[g.Output] = arr + d
		cr.SlewPS[g.Output] = c.NLDM.SlewOut.Lookup(slew, load) * corner.Scale
	}
	for i, po := range nl.POs {
		if a := cr.ArrivalPS[po]; cr.CriticalPO < 0 || a > cr.MaxDelayPS {
			cr.MaxDelayPS = a
			cr.CriticalPO = i
		}
	}
	return cr, nil
}
