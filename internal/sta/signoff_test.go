package sta

import (
	"math/rand"
	"testing"

	"aigtimer/internal/cell"
	"aigtimer/internal/netlist"
	"aigtimer/internal/techmap"
)

func TestSignoffCornersOrdered(t *testing.T) {
	nl := chainNetlist(4)
	r, err := Signoff(nl, SignoffParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Corners) != len(cell.SignoffCorners) {
		t.Fatalf("corner count %d", len(r.Corners))
	}
	// Slow corner must govern.
	if r.WorstCorner != "SS" {
		t.Fatalf("worst corner %s", r.WorstCorner)
	}
	var ff, tt, ss float64
	for _, cr := range r.Corners {
		switch cr.Corner.Name {
		case "FF":
			ff = cr.MaxDelayPS
		case "TT":
			tt = cr.MaxDelayPS
		case "SS":
			ss = cr.MaxDelayPS
		}
	}
	if !(ff < tt && tt < ss) {
		t.Fatalf("corner ordering violated: FF=%.1f TT=%.1f SS=%.1f", ff, tt, ss)
	}
	if r.WorstDelayPS != ss {
		t.Fatalf("worst delay %.1f != SS %.1f", r.WorstDelayPS, ss)
	}
}

func TestSignoffSlewPropagationIncreasesDelay(t *testing.T) {
	// The NLDM delay includes a slew-sensitivity term, so signoff TT delay
	// must exceed the slew-less linear-model delay on a deep chain.
	nl := chainNetlist(6)
	lin := Analyze(nl)
	r, err := Signoff(nl, SignoffParams{Corners: []cell.Corner{{Name: "TT", Scale: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if r.WorstDelayPS <= lin.MaxDelayPS {
		t.Fatalf("NLDM delay %.1f not above linear %.1f", r.WorstDelayPS, lin.MaxDelayPS)
	}
	// But within a sane factor (slew term is a correction, not dominant).
	if r.WorstDelayPS > 2*lin.MaxDelayPS {
		t.Fatalf("NLDM delay %.1f implausibly high vs linear %.1f", r.WorstDelayPS, lin.MaxDelayPS)
	}
}

func TestSignoffInputSlewMatters(t *testing.T) {
	nl := chainNetlist(2)
	fast, err := Signoff(nl, SignoffParams{InputSlewPS: 5})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Signoff(nl, SignoffParams{InputSlewPS: 300})
	if err != nil {
		t.Fatal(err)
	}
	if slow.WorstDelayPS <= fast.WorstDelayPS {
		t.Fatalf("input slew had no effect: %.1f vs %.1f", fast.WorstDelayPS, slow.WorstDelayPS)
	}
}

func TestSignoffOnMappedDesign(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	lib := cell.Builtin()
	g := randomAIG(rng, 8, 120, 4)
	nl, err := techmap.Map(g, lib, techmap.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Signoff(nl, SignoffParams{})
	if err != nil {
		t.Fatal(err)
	}
	if r.WorstDelayPS <= 0 || r.AreaUM2 != nl.AreaUM2() {
		t.Fatalf("bad signoff result: %+v", r)
	}
	// Slew values must be positive everywhere downstream of gates.
	for _, cr := range r.Corners {
		for gi := range nl.Gates {
			out := nl.Gates[gi].Output
			if cr.SlewPS[out] <= 0 {
				t.Fatalf("nonpositive slew on net %d at %s", out, cr.Corner.Name)
			}
		}
	}
}

func TestSignoffRejectsUncharacterizedCell(t *testing.T) {
	lib := cell.Builtin()
	bare := &cell.Cell{Name: "RAW", NumInputs: 1, Function: 0x1, AreaUM2: 1}
	b := netlist.NewBuilder(lib, 1)
	b.AddPO(b.AddGate(bare, b.PINet(0)))
	if _, err := Signoff(b.Build(), SignoffParams{}); err == nil {
		t.Fatal("uncharacterized cell accepted")
	}
}

func TestTimingTableLookup(t *testing.T) {
	tab := cell.TimingTable{
		SlewAxis: []float64{0, 10},
		LoadAxis: []float64{0, 10},
		Values:   [][]float64{{0, 10}, {20, 30}},
	}
	cases := []struct {
		s, l, want float64
	}{
		{0, 0, 0}, {0, 10, 10}, {10, 0, 20}, {10, 10, 30},
		{5, 5, 15},    // center
		{-5, 0, 0},    // clamp low
		{20, 20, 30},  // clamp high
		{0, 2.5, 2.5}, // partial
	}
	for _, c := range cases {
		if got := tab.Lookup(c.s, c.l); got != c.want {
			t.Errorf("Lookup(%v,%v) = %v, want %v", c.s, c.l, got, c.want)
		}
	}
}
