package sta

import (
	"fmt"
	"math"
	"strings"

	"aigtimer/internal/netlist"
)

// Result holds the timing analysis of one netlist.
type Result struct {
	// Netlist is the analyzed design; all per-net slices below are
	// indexed by its NetIDs.
	Netlist *netlist.Netlist

	// ArrivalPS is the latest signal arrival time at every net, in
	// picoseconds; primary-input nets arrive at 0.
	ArrivalPS []float64
	// RequiredPS is the latest allowed arrival at every net for the
	// design to meet MaxDelayPS; nets with no path to a PO stay +Inf.
	RequiredPS []float64
	// GateDelay is the pin-to-output delay of every gate under the load
	// of its output net, indexed like Netlist.Gates.
	GateDelay []float64
	// LoadsFF is the capacitive load (fF) of every gate-output net,
	// indexed by net; primary-input net entries are left 0 because the
	// delay model never reads them. Update compares these against a
	// previous analysis to decide which gates need re-evaluation.
	LoadsFF []float64

	// MaxDelayPS is the maximum arrival over all POs (the design delay).
	MaxDelayPS float64
	// CriticalPO is the index (into Netlist.POs) of the PO realizing
	// MaxDelayPS, or -1 for a netlist without gates or POs.
	CriticalPO int
	// AreaUM2 is a convenience copy of the netlist cell area.
	AreaUM2 float64
}

// Analyze runs STA on the netlist.
func Analyze(nl *netlist.Netlist) *Result {
	numNets := nl.NumNets()
	r := &Result{
		Netlist:    nl,
		ArrivalPS:  make([]float64, numNets),
		RequiredPS: make([]float64, numNets),
		GateDelay:  make([]float64, len(nl.Gates)),
		LoadsFF:    make([]float64, numNets),
		AreaUM2:    nl.AreaUM2(),
		CriticalPO: -1,
	}
	// Forward pass: gates are stored in topological order.
	for gi := range nl.Gates {
		g := &nl.Gates[gi]
		load := nl.LoadFF(g.Output)
		r.LoadsFF[g.Output] = load
		d := g.Cell.DelayPS(load)
		r.GateDelay[gi] = d
		arr := 0.0
		for _, in := range g.Inputs {
			if a := r.ArrivalPS[in]; a > arr {
				arr = a
			}
		}
		r.ArrivalPS[g.Output] = arr + d
	}
	r.finishPasses()
	return r
}

// finishPasses derives the PO summary and required times from the
// forward-pass arrivals; shared by Analyze and Update.
func (r *Result) finishPasses() {
	nl := r.Netlist
	r.MaxDelayPS, r.CriticalPO = 0, -1
	for i, po := range nl.POs {
		if a := r.ArrivalPS[po]; r.CriticalPO < 0 || a > r.MaxDelayPS {
			r.MaxDelayPS = a
			r.CriticalPO = i
		}
	}
	// Backward pass: required times w.r.t. the max delay.
	for i := range r.RequiredPS {
		r.RequiredPS[i] = math.Inf(1)
	}
	for _, po := range nl.POs {
		r.RequiredPS[po] = r.MaxDelayPS
	}
	for gi := len(nl.Gates) - 1; gi >= 0; gi-- {
		g := &nl.Gates[gi]
		req := r.RequiredPS[g.Output] - r.GateDelay[gi]
		for _, in := range g.Inputs {
			if req < r.RequiredPS[in] {
				r.RequiredPS[in] = req
			}
		}
	}
}

// SlackPS returns the slack of a net. Nets with no path to a PO have
// +Inf slack.
func (r *Result) SlackPS(n netlist.NetID) float64 {
	return r.RequiredPS[n] - r.ArrivalPS[n]
}

// MaxDelayNS returns the maximum delay in nanoseconds (the unit the paper
// reports in Table I).
func (r *Result) MaxDelayNS() float64 { return r.MaxDelayPS / 1000 }

// CriticalPath returns the gate indices along one maximum-delay path, from
// the input side to the critical PO's driver.
func (r *Result) CriticalPath() []int {
	nl := r.Netlist
	if r.CriticalPO < 0 {
		return nil
	}
	var rev []int
	net := nl.POs[r.CriticalPO]
	for {
		gi := nl.Driver(net)
		if gi < 0 {
			break
		}
		rev = append(rev, gi)
		g := &nl.Gates[gi]
		// Step to the latest-arriving input.
		var next netlist.NetID = -1
		worst := math.Inf(-1)
		for _, in := range g.Inputs {
			if a := r.ArrivalPS[in]; a > worst {
				worst = a
				next = in
			}
		}
		if next < 0 {
			break // tie cell
		}
		net = next
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Report renders a human-readable timing summary.
func (r *Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "max delay: %.1f ps (%.3f ns), area: %.2f um2\n",
		r.MaxDelayPS, r.MaxDelayNS(), r.AreaUM2)
	path := r.CriticalPath()
	fmt.Fprintf(&sb, "critical path (%d stages):\n", len(path))
	for _, gi := range path {
		g := &r.Netlist.Gates[gi]
		fmt.Fprintf(&sb, "  %-10s out=n%-5d delay=%6.1f ps  arrival=%8.1f ps\n",
			g.Cell.Name, g.Output, r.GateDelay[gi], r.ArrivalPS[g.Output])
	}
	return sb.String()
}
