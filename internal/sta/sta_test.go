package sta

import (
	"math"
	"math/rand"
	"testing"

	"aigtimer/internal/aig"
	"aigtimer/internal/cell"
	"aigtimer/internal/netlist"
	"aigtimer/internal/techmap"
)

// chainNetlist builds PI -> INV -> INV -> ... -> PO.
func chainNetlist(n int) *netlist.Netlist {
	lib := cell.Builtin()
	b := netlist.NewBuilder(lib, 1)
	net := b.PINet(0)
	for i := 0; i < n; i++ {
		net = b.AddGate(lib.Inverter(), net)
	}
	b.AddPO(net)
	return b.Build()
}

func TestChainDelayAdds(t *testing.T) {
	lib := cell.Builtin()
	inv := lib.Inverter()
	nl := chainNetlist(3)
	r := Analyze(nl)

	// Loads: stages 0 and 1 drive one INV pin + wire; stage 2 drives PO.
	interLoad := inv.InputCapFF + lib.WireCapFF
	lastLoad := lib.WireCapFF + lib.OutputLoadFF
	want := 2*inv.DelayPS(interLoad) + inv.DelayPS(lastLoad)
	if math.Abs(r.MaxDelayPS-want) > 1e-9 {
		t.Fatalf("MaxDelayPS = %v, want %v", r.MaxDelayPS, want)
	}
	if got := r.MaxDelayNS(); math.Abs(got-want/1000) > 1e-12 {
		t.Fatalf("MaxDelayNS = %v", got)
	}
	if len(r.CriticalPath()) != 3 {
		t.Fatalf("critical path length = %d, want 3", len(r.CriticalPath()))
	}
	// All nets on the single path have zero slack.
	for _, po := range nl.POs {
		if s := r.SlackPS(po); math.Abs(s) > 1e-9 {
			t.Errorf("PO slack = %v, want 0", s)
		}
	}
}

func TestFanoutIncreasesDelay(t *testing.T) {
	lib := cell.Builtin()
	// One NAND2 driving k inverters; more fanout -> more load -> slower.
	build := func(k int) *netlist.Netlist {
		b := netlist.NewBuilder(lib, 2)
		n := b.AddGate(lib.CellByName("NAND2_X1"), b.PINet(0), b.PINet(1))
		for i := 0; i < k; i++ {
			b.AddPO(b.AddGate(lib.Inverter(), n))
		}
		return b.Build()
	}
	d1 := Analyze(build(1)).MaxDelayPS
	d4 := Analyze(build(4)).MaxDelayPS
	if d4 <= d1 {
		t.Fatalf("fanout-4 delay %.1f not larger than fanout-1 delay %.1f", d4, d1)
	}
}

func TestSlackConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	lib := cell.Builtin()
	g := randomAIG(rng, 8, 150, 5)
	nl, err := techmap.Map(g, lib, techmap.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(nl)
	if r.MaxDelayPS <= 0 {
		t.Fatalf("nonpositive max delay")
	}
	// Slack is nonnegative... no: required is relative to max delay, so
	// slack >= 0 for all nets on PO cones and exactly 0 somewhere.
	sawZero := false
	for n := 0; n < nl.NumNets(); n++ {
		s := r.SlackPS(netlist.NetID(n))
		if math.IsInf(s, 1) {
			continue // not on any PO cone
		}
		if s < -1e-9 {
			t.Fatalf("negative slack %v on net %d", s, n)
		}
		if math.Abs(s) < 1e-9 {
			sawZero = true
		}
	}
	if !sawZero {
		t.Fatalf("no zero-slack net found")
	}
	// Critical path arrivals must be monotonically increasing and end at
	// the max delay.
	path := r.CriticalPath()
	if len(path) == 0 {
		t.Fatalf("no critical path")
	}
	last := path[len(path)-1]
	if math.Abs(r.ArrivalPS[nl.Gates[last].Output]-r.MaxDelayPS) > 1e-9 {
		t.Fatalf("critical path does not end at max delay")
	}
	prev := -1.0
	for _, gi := range path {
		a := r.ArrivalPS[nl.Gates[gi].Output]
		if a <= prev {
			t.Fatalf("critical path arrivals not increasing")
		}
		prev = a
	}
}

func TestReportContainsPath(t *testing.T) {
	nl := chainNetlist(2)
	r := Analyze(nl)
	rep := r.Report()
	if len(rep) == 0 {
		t.Fatal("empty report")
	}
	for _, want := range []string{"max delay", "critical path", "INV_X1"} {
		if !contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func randomAIG(rng *rand.Rand, numPIs, numAnds, numPOs int) *aig.AIG {
	b := aig.NewBuilder(numPIs)
	lits := make([]aig.Lit, 0, numPIs+numAnds)
	for i := 0; i < numPIs; i++ {
		lits = append(lits, b.PI(i))
	}
	for len(lits) < numPIs+numAnds {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		c := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, b.And(a, c))
	}
	for i := 0; i < numPOs; i++ {
		b.AddPO(lits[len(lits)-1-rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0))
	}
	return b.Build()
}
