// Package stats provides the small statistical toolkit the experiments
// need: Pearson correlation (Fig. 1), absolute-percentage-error summaries
// (Table III), and Pareto-front extraction (Fig. 5).
package stats

import (
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples. It returns 0 when either sample has zero variance or fewer
// than two points.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson: length mismatch")
	}
	n := float64(len(x))
	if len(x) < 2 {
		return 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// ErrorSummary summarizes absolute percentage errors the way Table III
// reports model accuracy.
type ErrorSummary struct {
	MeanPct float64
	MaxPct  float64
	StdPct  float64
	N       int
}

// AbsPctErrors computes |pred-truth|/|truth| * 100 pointwise. Points with
// zero truth are skipped.
func AbsPctErrors(truth, pred []float64) []float64 {
	if len(truth) != len(pred) {
		panic("stats: AbsPctErrors: length mismatch")
	}
	out := make([]float64, 0, len(truth))
	for i := range truth {
		if truth[i] == 0 {
			continue
		}
		out = append(out, math.Abs(pred[i]-truth[i])/math.Abs(truth[i])*100)
	}
	return out
}

// Summarize reduces a set of percentage errors to Table III's mean/max/std.
func Summarize(errsPct []float64) ErrorSummary {
	s := ErrorSummary{N: len(errsPct)}
	if len(errsPct) == 0 {
		return s
	}
	var sum float64
	for _, e := range errsPct {
		sum += e
		if e > s.MaxPct {
			s.MaxPct = e
		}
	}
	s.MeanPct = sum / float64(len(errsPct))
	var v float64
	for _, e := range errsPct {
		v += (e - s.MeanPct) * (e - s.MeanPct)
	}
	s.StdPct = math.Sqrt(v / float64(len(errsPct)))
	return s
}

// RMSE returns the root mean squared error.
func RMSE(truth, pred []float64) float64 {
	if len(truth) != len(pred) {
		panic("stats: RMSE: length mismatch")
	}
	if len(truth) == 0 {
		return 0
	}
	var s float64
	for i := range truth {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(truth)))
}

// Point is a 2-D point for Pareto analysis: X is typically area, Y delay.
type Point struct {
	X, Y float64
	Tag  int // caller-defined identity (e.g. run index)
}

// ParetoFront returns the non-dominated subset of points under
// minimization of both coordinates, sorted by X ascending. A point p
// dominates q when p.X <= q.X and p.Y <= q.Y with at least one strict.
func ParetoFront(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	s := append([]Point(nil), pts...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].X != s[j].X {
			return s[i].X < s[j].X
		}
		return s[i].Y < s[j].Y
	})
	var front []Point
	bestY := math.Inf(1)
	for _, p := range s {
		if p.Y < bestY {
			front = append(front, p)
			bestY = p.Y
		}
	}
	return front
}

// FrontDelayAtArea interpolates the Pareto front: the smallest Y (delay)
// achievable at X (area) budget at most xMax. Returns +Inf when the front
// has no point with X <= xMax.
func FrontDelayAtArea(front []Point, xMax float64) float64 {
	best := math.Inf(1)
	for _, p := range front {
		if p.X <= xMax && p.Y < best {
			best = p.Y
		}
	}
	return best
}

// Median returns the median of the sample (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}

// MinMax returns the extrema of the sample (zeros for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
