package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %v, want 1", r)
	}
	yn := []float64{-2, -4, -6, -8, -10}
	if r := Pearson(x, yn); math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonEdgeCases(t *testing.T) {
	if r := Pearson([]float64{1}, []float64{2}); r != 0 {
		t.Errorf("single point r = %v", r)
	}
	if r := Pearson([]float64{3, 3, 3}, []float64{1, 2, 3}); r != 0 {
		t.Errorf("zero variance r = %v", r)
	}
	mustPanic(t, func() { Pearson([]float64{1}, []float64{1, 2}) })
}

func TestPearsonBounds(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r := Pearson(x, y)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAbsPctErrorsAndSummary(t *testing.T) {
	truth := []float64{100, 200, 0, 50}
	pred := []float64{110, 180, 5, 50}
	errs := AbsPctErrors(truth, pred)
	if len(errs) != 3 { // zero-truth point skipped
		t.Fatalf("len = %d", len(errs))
	}
	want := []float64{10, 10, 0}
	for i := range want {
		if math.Abs(errs[i]-want[i]) > 1e-12 {
			t.Errorf("errs[%d] = %v, want %v", i, errs[i], want[i])
		}
	}
	s := Summarize(errs)
	if math.Abs(s.MeanPct-20.0/3) > 1e-9 || s.MaxPct != 10 || s.N != 3 {
		t.Errorf("summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 || z.MeanPct != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Errorf("RMSE identical = %v", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if got := RMSE(nil, nil); got != 0 {
		t.Errorf("RMSE empty = %v", got)
	}
}

func TestParetoFront(t *testing.T) {
	pts := []Point{
		{X: 1, Y: 10, Tag: 0},
		{X: 2, Y: 5, Tag: 1},
		{X: 3, Y: 7, Tag: 2}, // dominated by (2,5)
		{X: 4, Y: 4, Tag: 3},
		{X: 4, Y: 9, Tag: 4}, // dominated
		{X: 0.5, Y: 20, Tag: 5},
	}
	front := ParetoFront(pts)
	wantTags := []int{5, 0, 1, 3}
	if len(front) != len(wantTags) {
		t.Fatalf("front = %+v", front)
	}
	for i, p := range front {
		if p.Tag != wantTags[i] {
			t.Fatalf("front[%d].Tag = %d, want %d", i, p.Tag, wantTags[i])
		}
	}
	// X ascending and Y strictly descending along a front.
	for i := 1; i < len(front); i++ {
		if front[i].X < front[i-1].X || front[i].Y >= front[i-1].Y {
			t.Fatalf("front not monotone: %+v", front)
		}
	}
}

func TestParetoFrontProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100, Tag: i}
		}
		front := ParetoFront(pts)
		// No front point is dominated by any original point.
		for _, f := range front {
			for _, p := range pts {
				if p.X <= f.X && p.Y <= f.Y && (p.X < f.X || p.Y < f.Y) {
					return false
				}
			}
		}
		// Every non-front point is dominated by some front point.
		inFront := map[int]bool{}
		for _, f := range front {
			inFront[f.Tag] = true
		}
		for _, p := range pts {
			if inFront[p.Tag] {
				continue
			}
			dominated := false
			for _, f := range front {
				if f.X <= p.X && f.Y <= p.Y {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFrontDelayAtArea(t *testing.T) {
	front := []Point{{X: 1, Y: 10}, {X: 2, Y: 5}, {X: 4, Y: 2}}
	if got := FrontDelayAtArea(front, 3); got != 5 {
		t.Errorf("at 3: %v, want 5", got)
	}
	if got := FrontDelayAtArea(front, 0.5); !math.IsInf(got, 1) {
		t.Errorf("at 0.5: %v, want +Inf", got)
	}
	if got := FrontDelayAtArea(front, 100); got != 2 {
		t.Errorf("at 100: %v, want 2", got)
	}
}

func TestMedianAndMinMax(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %v", m)
	}
	if m := Median(nil); m != 0 {
		t.Errorf("median empty = %v", m)
	}
	min, max := MinMax([]float64{5, -2, 7})
	if min != -2 || max != 7 {
		t.Errorf("minmax = %v %v", min, max)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	f()
}
