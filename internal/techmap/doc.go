// Package techmap implements cut-based structural technology mapping of
// AIGs onto a standard-cell library.
//
// For every AND node the mapper enumerates k-feasible cuts (k ≤ 4),
// matches each cut's truth table — in both output phases — against the
// library's match index, and keeps the best implementation per phase under
// a delay-oriented cost with a nominal load. Signals are polarity-aware:
// every node may be realized in positive phase, negative phase, or one
// phase plus a shared inverter; pin complementations demanded by a match
// consume the complement phase of the leaf. Cut functions that degenerate
// to a projection of one leaf become wires, and constant cut functions
// become tie cells. An optional area-recovery pass then downsizes drive
// strengths off the critical path under required-time constraints (pure
// sizing: the netlist structure is unchanged, so total area can only
// decrease).
//
// This is the "technology mapping" step whose delay the paper's three
// optimization flows either compute exactly (ground-truth flow), proxy by
// AIG levels (baseline flow), or predict with a learned model (ML flow).
// The mapper is intentionally the expensive step: its cost is what the
// learned predictor amortizes away.
//
// # Determinism and the incremental contract
//
// Mapping is a deterministic function of (graph, library, Params):
// structurally equal AIGs map to identical netlists, which is what lets
// the evaluation layer memoize results and the distributed sweep merge
// them across processes.
//
// Map retains its full decision state in a State; Remap re-maps a
// derived graph from the State of its base using the aig.Delta between
// them — prefix cuts and implementations are translated (exact because
// the pipeline is order-isomorphism-invariant and the delta's matched
// translation is monotone), and only the dirty suffix is re-enumerated,
// re-selected, and re-emitted. The contract is exactness, not
// approximation: Remap's netlist is bit-identical to mapping the derived
// graph from scratch, proven by the differential harness and fuzz target
// in this package and internal/eval.
//
// The stepwise API (Mapping, via BeginMapping / BeginMappingWithCuts)
// decomposes Map into its phases — cut enumeration, per-node
// implementation selection (SelectNode), and netlist emission — so an
// orchestrator can run the selection of independent nodes within one
// topological level on separate goroutines. Each step computes exactly
// what the monolithic pass computes, node by node, so any interleaving
// that respects level order reproduces Map bit for bit; this is the
// entry point signoff's parallel evaluation pool uses for level-parallel
// mapping.
package techmap
