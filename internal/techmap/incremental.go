// Incremental technology mapping. A full Map pays cut enumeration and
// match selection for every node of the AIG; after an annealer move
// that touched a small logic cone, almost all of that work reproduces
// the previous answer. MapState retains the per-node mapping state and
// Remap rebuilds only the dirty suffix of a rebased graph (aig.Delta),
// translating the matched prefix's cuts and implementations instead of
// recomputing them.
//
// Exactness. Remap returns the same netlist Map would return on the
// same graph, bit for bit. This is not best-effort: the delta's matched
// prefix is index-monotone (aig.Rebase sorts matched nodes by their
// previous index), and every step of the mapping pipeline — cut
// merging, priority-cut filtering, match ranking — consults node
// indices only through order comparisons, so an order-preserving
// relabeling carries the previous state over unchanged. The dirty
// suffix is recomputed by literally the same code the full pass runs
// (cut.EnumerateSuffix, selectImpls from the suffix start), and the
// global passes that depend on all-nodes state (area recovery, emit)
// always run in full — they are linear and cheap next to enumeration
// and matching. The differential harness in internal/eval and the
// FuzzIncrementalRemap target enforce the equality continuously.
//
// Allocation model. Every entry point has an Into variant that builds
// the new State inside a dead one's storage (impls, cut-list table,
// gate keys, the flat gate-net index, and the netlist carcass are all
// reused), takes retained cut storage from a caller-owned cut.Arena,
// and draws working buffers from a caller-owned Scratch. A retained
// pipeline that recycles all three performs no steady-state heap
// allocations while re-mapping; the legacy entry points allocate fresh
// storage per call and behave as before.
package techmap

import (
	"fmt"

	"aigtimer/internal/aig"
	"aigtimer/internal/cell"
	"aigtimer/internal/cut"
	"aigtimer/internal/netlist"
)

// State is the reusable result of mapping one AIG: the per-node
// priority cuts, the pre-area-recovery implementation choices, and the
// emitted netlist with its (node, phase) -> net bookkeeping. It is
// immutable after creation and safe to share across goroutines; Remap
// reads it and produces a State for the derived graph. The Into
// variants cannibalize a dead State's storage for the new one — the
// caller owns the guarantee that nothing references the dead State.
type State struct {
	g   *aig.AIG
	lib *cell.Library
	p   Params // normalized (defaults applied)

	cuts     [][]cut.Cut
	impls    [][2]impl  // selectImpls output, before area recovery
	gateKeys [][2]int32 // per gate, the (node, phase) that emitted it
	// gateNet is the creator-key index: gateNet[phase][node] is the net
	// emitted for that key, -1 where the key emitted no gate. A flat
	// array rather than a map: it is rebuilt on every mapping, and the
	// incremental path probes it per gate.
	gateNet [2][]netlist.NetID
	nl      *netlist.Netlist
}

// AIG returns the graph this state maps.
func (s *State) AIG() *aig.AIG { return s.g }

// Netlist returns the mapped netlist (identical to Map's result).
func (s *State) Netlist() *netlist.Netlist { return s.nl }

// growCutLists returns b resized to n entries, all nil.
func growCutLists(b [][]cut.Cut, n int) [][]cut.Cut {
	if cap(b) < n {
		return make([][]cut.Cut, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = nil
	}
	return b
}

// growNetIDs returns b resized to n entries, all -1.
func growNetIDs(b []netlist.NetID, n int) []netlist.NetID {
	if cap(b) < n {
		b = make([]netlist.NetID, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = -1
	}
	return b
}

// growInt32s returns b resized to n entries, all -1.
func growInt32s(b []int32, n int) []int32 {
	if cap(b) < n {
		b = make([]int32, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = -1
	}
	return b
}

// runMapper normalizes the parameters, enumerates cuts (unless the
// caller precomputed them), and selects implementations — the shared
// front half of Map, MapState, and (for the dirty suffix only) Remap.
// The impls buffer is recycled from dead and working buffers come from
// sc; either may be nil for fresh allocation. The returned mapper lives
// inside sc and is valid until sc's next mapping call.
func runMapper(g *aig.AIG, lib *cell.Library, p Params, cuts [][]cut.Cut, dead *State, sc *Scratch) (*mapper, error) {
	if sc == nil {
		sc = &Scratch{}
	}
	m := prepMapper(g, lib, p, cuts, dead, sc)
	return m, m.selectImpls(g.FirstAnd())
}

// prepMapper is runMapper minus the selection pass: normalize
// parameters, enumerate cuts if the caller didn't, and size the
// selection buffers inside sc. sc must be non-nil.
func prepMapper(g *aig.AIG, lib *cell.Library, p Params, cuts [][]cut.Cut, dead *State, sc *Scratch) *mapper {
	if p.Cut.K == 0 {
		p.Cut = DefaultParams.Cut
	}
	if p.NominalLoadFF == 0 {
		p.NominalLoadFF = DefaultParams.NominalLoadFF
	}
	if cuts == nil {
		cuts = cut.Enumerate(g, p.Cut)
	}
	m := sc.mapper()
	m.g, m.lib, m.p, m.cuts, m.sc = g, lib, p, cuts, sc
	var implsBuf [][2]impl
	if dead != nil {
		implsBuf = dead.impls
	}
	m.impls = growImpls(implsBuf, g.NumNodes())
	m.eff = m.impls
	sc.direct = growImpls(sc.direct, g.NumNodes())
	return m
}

// Mapping is an in-flight mapping whose per-node selection the caller
// drives, the stepwise face of MapStateWithCutsInto: Begin sizes the
// buffers, the caller invokes SelectNode for every AND node in a
// fanin-cone-respecting order (index order and level order both
// qualify), and Finish runs the global passes. Driven sequentially it
// is bit-identical to MapStateWithCutsInto; its reason to exist is that
// SelectNode calls for nodes of one level are independent when each
// runs on its own lane, so a level-parallel caller (signoff) can select
// a whole level concurrently without changing the result. A Mapping is
// a view into its Scratch and is valid until the Scratch's next
// mapping call.
type Mapping struct {
	sc   *Scratch
	dead *State
}

// BeginMappingWithCuts starts a stepwise mapping of g over a
// precomputed cut set (see MapStateWithCuts for the cuts contract and
// MapStateWithCutsInto for dead/sc recycling; sc may be nil to allocate
// fresh). lanes is the number of concurrent SelectNode lanes the caller
// will use (minimum 1); each lane gets its own candidate buffer inside
// sc so selection never allocates in the steady state.
func BeginMappingWithCuts(g *aig.AIG, lib *cell.Library, p Params, cuts [][]cut.Cut, dead *State, sc *Scratch, lanes int) (Mapping, error) {
	if len(cuts) != g.NumNodes() {
		return Mapping{}, fmt.Errorf("techmap: cut set covers %d nodes, graph has %d", len(cuts), g.NumNodes())
	}
	if sc == nil {
		sc = &Scratch{}
	}
	prepMapper(g, lib, p, cuts, dead, sc)
	sc.growLanes(lanes)
	return Mapping{sc: sc, dead: dead}, nil
}

// SelectNode chooses the implementations of AND node n on the given
// lane (0 <= lane < the Begin lanes). Calls on distinct lanes may run
// concurrently for nodes of equal level — each call reads only impls
// strictly below n and writes only n's slots. The error, if any, is
// n's selection failure; the caller owns picking the sequential-order
// first error when collecting from several lanes.
func (mp Mapping) SelectNode(n int32, lane int) error {
	return mp.sc.m.selectNode(n, mp.sc.candBuf(lane))
}

// Finish runs the global passes (area recovery, emission, state
// packaging) after every AND node has been selected, completing the
// MapStateWithCutsInto contract.
func (mp Mapping) Finish() (*netlist.Netlist, *State, error) {
	return finishMapping(&mp.sc.m, mp.dead)
}

// MapState maps the AIG like Map and additionally returns the mapping
// state Remap needs to re-map derived graphs incrementally.
func MapState(g *aig.AIG, lib *cell.Library, p Params) (*netlist.Netlist, *State, error) {
	m, err := runMapper(g, lib, p, nil, nil, nil)
	if err != nil {
		return nil, nil, err
	}
	return finishMapping(m, nil)
}

// MapStateWithCuts is MapState over a precomputed cut set — one
// priority-cut list per node, exactly what cut.Enumerate(g, p.Cut)
// returns. It exists for callers that enumerate cuts for several
// mapping efforts in one shared pass (cut.EnumerateDual, used by
// signoff's dual-effort evaluation): the caller owns the guarantee that
// cuts matches p.Cut, and the mapping is bit-identical to
// MapState(g, lib, p) whenever it does. cuts is retained in the
// returned State and must not be mutated afterwards.
func MapStateWithCuts(g *aig.AIG, lib *cell.Library, p Params, cuts [][]cut.Cut) (*netlist.Netlist, *State, error) {
	return MapStateWithCutsInto(g, lib, p, cuts, nil, nil)
}

// MapStateWithCutsInto is MapStateWithCuts building the new State inside
// dead's storage and drawing working buffers from sc (either may be nil
// to allocate fresh). The result is bit-identical to MapStateWithCuts;
// the caller must guarantee nothing references dead anymore.
func MapStateWithCutsInto(g *aig.AIG, lib *cell.Library, p Params, cuts [][]cut.Cut, dead *State, sc *Scratch) (*netlist.Netlist, *State, error) {
	if len(cuts) != g.NumNodes() {
		return nil, nil, fmt.Errorf("techmap: cut set covers %d nodes, graph has %d", len(cuts), g.NumNodes())
	}
	m, err := runMapper(g, lib, p, cuts, dead, sc)
	if err != nil {
		return nil, nil, err
	}
	return finishMapping(m, dead)
}

// finishMapping runs the global passes (area recovery, emit) and
// packages the State, reusing dead's remaining storage (gate keys, the
// gate-net index, the netlist carcass, and the State struct itself).
// The pre-recovery impls are retained directly — area recovery operates
// on a scratch overlay and never mutates them, so no defensive snapshot
// is taken. Plain Map goes through emitMapped instead and skips this
// packaging entirely.
func finishMapping(m *mapper, dead *State) (*netlist.Netlist, *State, error) {
	s := dead
	if s == nil {
		s = &State{}
	}
	nl, gateKeys := emitMapped(m, s)
	gateNet := s.gateNet
	for ph := 0; ph < 2; ph++ {
		gateNet[ph] = growNetIDs(gateNet[ph], m.g.NumNodes())
	}
	for gi, k := range gateKeys {
		gateNet[k[1]][k[0]] = netlist.NetID(nl.NumPIs + gi)
	}
	*s = State{
		g: m.g, lib: m.lib, p: m.p,
		cuts: m.cuts, impls: m.impls,
		gateKeys: gateKeys, gateNet: gateNet, nl: nl,
	}
	return nl, s, nil
}

// emitMapped runs the global tail of mapping (area recovery, emission),
// recycling dead's netlist carcass and gate-key slice when non-nil.
func emitMapped(m *mapper, dead *State) (*netlist.Netlist, [][2]int32) {
	if m.p.AreaRecovery {
		m.recoverArea()
	}
	var nlRecycle *netlist.Netlist
	var gateKeys [][2]int32
	if dead != nil {
		nlRecycle, gateKeys = dead.nl, dead.gateKeys
	}
	return m.emit(nlRecycle, gateKeys)
}

// Remap maps next — a graph rebased against s's graph (aig.Rebase) —
// reusing s for the matched prefix and recomputing cuts and
// implementation choices only for the dirty suffix. It returns the new
// netlist (bit-identical to Map(next, ...) with s's parameters), the
// new State, and the net correspondence from the new netlist back to
// s's netlist for incremental STA seeding.
func Remap(s *State, next *aig.AIG, d *aig.Delta) (*netlist.Netlist, *State, netlist.NetMap, error) {
	return RemapInto(s, next, d, nil, nil, nil)
}

// RemapInto is Remap with caller-owned storage: the new State's retained
// cut storage is carved from a, the State itself is built inside dead's
// storage, and working buffers come from sc (each may be nil to allocate
// fresh). The arena is appended to, never Reset — one arena serves
// several RemapInto calls whose results live together (signoff's two
// efforts), and the caller resets it once when all of them are dead.
// The returned NetMap is backed by sc and valid until sc's next use.
// The result is bit-identical to Remap's; dead must be unreferenced and
// must not be s itself.
func RemapInto(s *State, next *aig.AIG, d *aig.Delta, a *cut.Arena, dead *State, sc *Scratch) (*netlist.Netlist, *State, netlist.NetMap, error) {
	if d == nil {
		return nil, nil, nil, fmt.Errorf("techmap: Remap: nil delta")
	}
	if err := d.Validate(s.g, next); err != nil {
		return nil, nil, nil, fmt.Errorf("techmap: Remap: %w", err)
	}
	if a == nil {
		a = new(cut.Arena)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	first := next.FirstAnd()
	limit := first + int32(d.NumMatched())

	// prev node -> next node for the matched image (identity below
	// FirstAnd; the translation is monotone by the rebase invariant).
	sc.inv = growInt32s(sc.inv, s.g.NumNodes())
	inv := sc.inv
	for i := int32(0); i < first; i++ {
		inv[i] = i
	}
	for i, mn := range d.MatchedPrev {
		inv[mn] = first + int32(i)
	}

	m := sc.mapper()
	m.g, m.lib, m.p, m.sc = next, s.lib, s.p, sc
	var implsBuf [][2]impl
	var cutsBuf [][]cut.Cut
	if dead != nil {
		implsBuf, cutsBuf = dead.impls, dead.cuts
	}
	m.impls = growImpls(implsBuf, next.NumNodes())
	m.eff = m.impls
	m.cuts = growCutLists(cutsBuf, next.NumNodes())
	sc.direct = growImpls(sc.direct, next.NumNodes())
	cut.Seed(next, m.cuts, a)
	for n := first; n < limit; n++ {
		pn := d.MatchedPrev[n-first]
		m.cuts[n] = translateCuts(s.cuts[pn], inv, a)
		m.impls[n] = translateImpls(s.impls[pn], inv)
	}
	cut.EnumerateSuffixArena(next, s.p.Cut, m.cuts, limit, a, &sc.cuts)
	if err := m.selectImpls(limit); err != nil {
		return nil, nil, nil, err
	}
	nl, ns, err := finishMapping(m, dead)
	if err != nil {
		return nil, nil, nil, err
	}
	return nl, ns, correspond(s, ns, d, sc), nil
}

// translateCuts deep-copies a matched node's cut list into next-graph
// indices, with storage carved from the arena. inv is monotone over the
// matched image, so the sorted leaf order — and with it every table,
// filter decision, and match ranking downstream — is preserved exactly.
func translateCuts(cs []cut.Cut, inv []int32, a *cut.Arena) []cut.Cut {
	out := a.AllocCuts(len(cs))
	for _, c := range cs {
		leaves := a.AllocLeaves(len(c.Leaves))
		for _, l := range c.Leaves {
			leaves = append(leaves, inv[l])
		}
		out = append(out, cut.Cut{Leaves: leaves, Table: c.Table})
	}
	return out
}

// translateImpls carries a matched node's phase implementations over;
// only the wire alias target is an index and needs remapping.
func translateImpls(ims [2]impl, inv []int32) [2]impl {
	for ph := range ims {
		if ims[ph].kind == kindWire {
			ims[ph].leaf = inv[ims[ph].leaf]
		}
	}
	return ims
}

// correspond builds the net correspondence between two consecutive
// mapping states into sc's NetMap buffer. A new net corresponds to a
// previous net when it is driven by a gate emitted for a matched
// (node, phase) key, with the identical cell and inputs that themselves
// correspond — verified in ascending net order, so the check is a
// single linear pass.
func correspond(prev, next *State, d *aig.Delta, sc *Scratch) netlist.NetMap {
	numPIs := next.nl.NumPIs
	if cap(sc.nm) < next.nl.NumNets() {
		sc.nm = make(netlist.NetMap, next.nl.NumNets())
	}
	sc.nm = sc.nm[:next.nl.NumNets()]
	nm := sc.nm
	for i := range nm {
		nm[i] = -1
	}
	for i := 0; i < numPIs; i++ {
		nm[i] = netlist.NetID(i)
	}
	first := next.g.FirstAnd()
	limit := first + int32(d.NumMatched())
	toPrev := func(n int32) int32 {
		switch {
		case n < first:
			return n
		case n < limit:
			return d.MatchedPrev[n-first]
		default:
			return -1
		}
	}
	for gi, k := range next.gateKeys {
		out := netlist.NetID(numPIs + gi)
		pn := toPrev(k[0])
		if pn < 0 {
			continue
		}
		pnet := prev.gateNet[k[1]][pn]
		if pnet < 0 {
			continue
		}
		g := &next.nl.Gates[gi]
		pg := &prev.nl.Gates[int(pnet)-prev.nl.NumPIs]
		if g.Cell != pg.Cell || len(g.Inputs) != len(pg.Inputs) {
			continue
		}
		same := true
		for j, in := range g.Inputs {
			if nm[in] != pg.Inputs[j] {
				same = false
				break
			}
		}
		if same {
			nm[out] = pnet
		}
	}
	return nm
}
