// Incremental technology mapping. A full Map pays cut enumeration and
// match selection for every node of the AIG; after an annealer move
// that touched a small logic cone, almost all of that work reproduces
// the previous answer. MapState retains the per-node mapping state and
// Remap rebuilds only the dirty suffix of a rebased graph (aig.Delta),
// translating the matched prefix's cuts and implementations instead of
// recomputing them.
//
// Exactness. Remap returns the same netlist Map would return on the
// same graph, bit for bit. This is not best-effort: the delta's matched
// prefix is index-monotone (aig.Rebase sorts matched nodes by their
// previous index), and every step of the mapping pipeline — cut
// merging, priority-cut filtering, match ranking — consults node
// indices only through order comparisons, so an order-preserving
// relabeling carries the previous state over unchanged. The dirty
// suffix is recomputed by literally the same code the full pass runs
// (cut.EnumerateSuffix, selectImpls from the suffix start), and the
// global passes that depend on all-nodes state (area recovery, emit)
// always run in full — they are linear and cheap next to enumeration
// and matching. The differential harness in internal/eval and the
// FuzzIncrementalRemap target enforce the equality continuously.
package techmap

import (
	"fmt"

	"aigtimer/internal/aig"
	"aigtimer/internal/cell"
	"aigtimer/internal/cut"
	"aigtimer/internal/netlist"
)

// State is the reusable result of mapping one AIG: the per-node
// priority cuts, the pre-area-recovery implementation choices, and the
// emitted netlist with its (node, phase) -> net bookkeeping. It is
// immutable after creation and safe to share across goroutines; Remap
// reads it and produces a fresh State for the derived graph.
type State struct {
	g   *aig.AIG
	lib *cell.Library
	p   Params // normalized (defaults applied)

	cuts     [][]cut.Cut
	impls    [][2]impl                  // selectImpls output, before area recovery
	gateKeys [][2]int32                 // per gate, the (node, phase) that emitted it
	gateOf   map[[2]int32]netlist.NetID // creator key -> output net
	nl       *netlist.Netlist
}

// AIG returns the graph this state maps.
func (s *State) AIG() *aig.AIG { return s.g }

// Netlist returns the mapped netlist (identical to Map's result).
func (s *State) Netlist() *netlist.Netlist { return s.nl }

// runMapper normalizes the parameters, enumerates cuts (unless the
// caller precomputed them), and selects implementations — the shared
// front half of Map, MapState, and (for the dirty suffix only) Remap.
func runMapper(g *aig.AIG, lib *cell.Library, p Params, cuts [][]cut.Cut) (*mapper, error) {
	if p.Cut.K == 0 {
		p.Cut = DefaultParams.Cut
	}
	if p.NominalLoadFF == 0 {
		p.NominalLoadFF = DefaultParams.NominalLoadFF
	}
	if cuts == nil {
		cuts = cut.Enumerate(g, p.Cut)
	}
	m := &mapper{
		g:      g,
		lib:    lib,
		p:      p,
		cuts:   cuts,
		impls:  make([][2]impl, g.NumNodes()),
		direct: make([][2]impl, g.NumNodes()),
	}
	if err := m.selectImpls(g.FirstAnd()); err != nil {
		return nil, err
	}
	return m, nil
}

// MapState maps the AIG like Map and additionally returns the mapping
// state Remap needs to re-map derived graphs incrementally.
func MapState(g *aig.AIG, lib *cell.Library, p Params) (*netlist.Netlist, *State, error) {
	m, err := runMapper(g, lib, p, nil)
	if err != nil {
		return nil, nil, err
	}
	return finishMapping(m)
}

// MapStateWithCuts is MapState over a precomputed cut set — one
// priority-cut list per node, exactly what cut.Enumerate(g, p.Cut)
// returns. It exists for callers that enumerate cuts for several
// mapping efforts in one shared pass (cut.EnumerateDual, used by
// signoff's dual-effort evaluation): the caller owns the guarantee that
// cuts matches p.Cut, and the mapping is bit-identical to
// MapState(g, lib, p) whenever it does. cuts is retained in the
// returned State and must not be mutated afterwards.
func MapStateWithCuts(g *aig.AIG, lib *cell.Library, p Params, cuts [][]cut.Cut) (*netlist.Netlist, *State, error) {
	if len(cuts) != g.NumNodes() {
		return nil, nil, fmt.Errorf("techmap: cut set covers %d nodes, graph has %d", len(cuts), g.NumNodes())
	}
	m, err := runMapper(g, lib, p, cuts)
	if err != nil {
		return nil, nil, err
	}
	return finishMapping(m)
}

// finishMapping snapshots the pre-recovery impls, runs the global
// passes (area recovery, emit), and packages the State. Plain Map goes
// through emitMapped instead and skips this packaging entirely.
func finishMapping(m *mapper) (*netlist.Netlist, *State, error) {
	implsPre := append([][2]impl(nil), m.impls...)
	nl, gateKeys := emitMapped(m)
	// Index gates by creator key once; Remap consults it for every
	// derived graph, and State is immutable after this point.
	gateOf := make(map[[2]int32]netlist.NetID, len(gateKeys))
	for gi, k := range gateKeys {
		gateOf[k] = netlist.NetID(nl.NumPIs + gi)
	}
	s := &State{
		g: m.g, lib: m.lib, p: m.p,
		cuts: m.cuts, impls: implsPre,
		gateKeys: gateKeys, gateOf: gateOf, nl: nl,
	}
	return nl, s, nil
}

// emitMapped runs the global tail of mapping (area recovery, emission).
func emitMapped(m *mapper) (*netlist.Netlist, [][2]int32) {
	if m.p.AreaRecovery {
		m.recoverArea()
	}
	nl, _, gateKeys := m.emit()
	return nl, gateKeys
}

// Remap maps next — a graph rebased against s's graph (aig.Rebase) —
// reusing s for the matched prefix and recomputing cuts and
// implementation choices only for the dirty suffix. It returns the new
// netlist (bit-identical to Map(next, ...) with s's parameters), the
// new State, and the net correspondence from the new netlist back to
// s's netlist for incremental STA seeding.
func Remap(s *State, next *aig.AIG, d *aig.Delta) (*netlist.Netlist, *State, netlist.NetMap, error) {
	if d == nil {
		return nil, nil, nil, fmt.Errorf("techmap: Remap: nil delta")
	}
	if err := d.Validate(s.g, next); err != nil {
		return nil, nil, nil, fmt.Errorf("techmap: Remap: %w", err)
	}
	first := next.FirstAnd()
	limit := first + int32(d.NumMatched())

	// prev node -> next node for the matched image (identity below
	// FirstAnd; the translation is monotone by the rebase invariant).
	inv := make([]int32, s.g.NumNodes())
	for i := range inv {
		inv[i] = -1
	}
	for i := int32(0); i < first; i++ {
		inv[i] = i
	}
	for i, m := range d.MatchedPrev {
		inv[m] = first + int32(i)
	}

	m := &mapper{
		g:      next,
		lib:    s.lib,
		p:      s.p,
		cuts:   make([][]cut.Cut, next.NumNodes()),
		impls:  make([][2]impl, next.NumNodes()),
		direct: make([][2]impl, next.NumNodes()),
	}
	cut.Seed(next, m.cuts)
	for n := first; n < limit; n++ {
		pn := d.MatchedPrev[n-first]
		m.cuts[n] = translateCuts(s.cuts[pn], inv)
		m.impls[n] = translateImpls(s.impls[pn], inv)
	}
	cut.EnumerateSuffix(next, s.p.Cut, m.cuts, limit)
	if err := m.selectImpls(limit); err != nil {
		return nil, nil, nil, err
	}
	nl, ns, err := finishMapping(m)
	if err != nil {
		return nil, nil, nil, err
	}
	return nl, ns, correspond(s, ns, d), nil
}

// translateCuts deep-copies a matched node's cut list into next-graph
// indices. inv is monotone over the matched image, so the sorted leaf
// order — and with it every table, filter decision, and match ranking
// downstream — is preserved exactly.
func translateCuts(cs []cut.Cut, inv []int32) []cut.Cut {
	out := make([]cut.Cut, len(cs))
	for i, c := range cs {
		leaves := make([]int32, len(c.Leaves))
		for j, l := range c.Leaves {
			leaves[j] = inv[l]
		}
		out[i] = cut.Cut{Leaves: leaves, Table: c.Table}
	}
	return out
}

// translateImpls carries a matched node's phase implementations over;
// only the wire alias target is an index and needs remapping.
func translateImpls(ims [2]impl, inv []int32) [2]impl {
	for ph := range ims {
		if ims[ph].kind == kindWire {
			ims[ph].leaf = inv[ims[ph].leaf]
		}
	}
	return ims
}

// correspond builds the net correspondence between two consecutive
// mapping states. A new net corresponds to a previous net when it is
// driven by a gate emitted for a matched (node, phase) key, with the
// identical cell and inputs that themselves correspond — verified in
// ascending net order, so the check is a single linear pass.
func correspond(prev, next *State, d *aig.Delta) netlist.NetMap {
	numPIs := next.nl.NumPIs
	nm := make(netlist.NetMap, next.nl.NumNets())
	for i := range nm {
		nm[i] = -1
	}
	for i := 0; i < numPIs; i++ {
		nm[i] = netlist.NetID(i)
	}
	prevGateOf := prev.gateOf
	first := next.g.FirstAnd()
	limit := first + int32(d.NumMatched())
	toPrev := func(n int32) int32 {
		switch {
		case n < first:
			return n
		case n < limit:
			return d.MatchedPrev[n-first]
		default:
			return -1
		}
	}
	for gi, k := range next.gateKeys {
		out := netlist.NetID(numPIs + gi)
		pn := toPrev(k[0])
		if pn < 0 {
			continue
		}
		pnet, ok := prevGateOf[[2]int32{pn, k[1]}]
		if !ok {
			continue
		}
		g := &next.nl.Gates[gi]
		pg := &prev.nl.Gates[int(pnet)-prev.nl.NumPIs]
		if g.Cell != pg.Cell || len(g.Inputs) != len(pg.Inputs) {
			continue
		}
		same := true
		for j, in := range g.Inputs {
			if nm[in] != pg.Inputs[j] {
				same = false
				break
			}
		}
		if same {
			nm[out] = pnet
		}
	}
	return nm
}
