package techmap

import (
	"math/rand"
	"testing"

	"aigtimer/internal/aig"
	"aigtimer/internal/cell"
	"aigtimer/internal/cut"
	"aigtimer/internal/netlist"
)

// sameNetlist reports whether two netlists are identical as stored
// structures: same cells (by pointer), same input nets, same POs.
func sameNetlist(a, b *netlist.Netlist) bool {
	if a.NumPIs != b.NumPIs || len(a.Gates) != len(b.Gates) || len(a.POs) != len(b.POs) {
		return false
	}
	for i := range a.Gates {
		ga, gb := &a.Gates[i], &b.Gates[i]
		if ga.Cell != gb.Cell || ga.Output != gb.Output || len(ga.Inputs) != len(gb.Inputs) {
			return false
		}
		for j := range ga.Inputs {
			if ga.Inputs[j] != gb.Inputs[j] {
				return false
			}
		}
	}
	for i := range a.POs {
		if a.POs[i] != b.POs[i] {
			return false
		}
	}
	return true
}

// mutateAIG derives a functionally different-but-similar graph from g:
// it re-strashes g with occasional local restructurings (fanin swaps
// and re-associations), the kind of cone-local change annealer moves
// produce.
func mutateAIG(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	nb := aig.NewBuilder(g.NumPIs())
	m := make([]aig.Lit, g.NumNodes())
	m[0] = aig.ConstFalse
	for i := 1; i <= g.NumPIs(); i++ {
		m[i] = nb.PI(i - 1)
	}
	g.TopoForEachAnd(func(n int32, f0, f1 aig.Lit) {
		a := m[f0.Node()].NotIf(f0.IsCompl())
		c := m[f1.Node()].NotIf(f1.IsCompl())
		switch rng.Intn(12) {
		case 0:
			// Redundant restructure: a AND c via De Morgan through OR.
			m[n] = nb.Or(a.Not(), c.Not()).Not()
		case 1:
			a, c = c, a
			m[n] = nb.And(a, c)
		default:
			m[n] = nb.And(a, c)
		}
	})
	for _, po := range g.POs() {
		nb.AddPO(m[po.Node()].NotIf(po.IsCompl()))
	}
	return nb.Build().Compact()
}

func TestRemapMatchesFullMap(t *testing.T) {
	lib := cell.Builtin()
	rng := rand.New(rand.NewSource(42))
	for _, p := range []Params{
		DefaultParams,
		{Cut: cut.Params{K: 4, MaxCuts: 24}, NominalLoadFF: 6.0, AreaRecovery: true},
		{Cut: cut.Params{K: 3, MaxCuts: 6}, NominalLoadFF: 4.0, AreaRecovery: false},
	} {
		for trial := 0; trial < 12; trial++ {
			prev := randomAIG(rng, 4+rng.Intn(5), 30+rng.Intn(120), 1+rng.Intn(4))
			_, st, err := MapState(prev, lib, p)
			if err != nil {
				t.Fatalf("MapState: %v", err)
			}
			cur := prev
			curState := st
			for step := 0; step < 4; step++ {
				raw := mutateAIG(cur, rng)
				next, d := aig.Rebase(cur, raw)
				incNl, incState, nm, err := Remap(curState, next, d)
				if err != nil {
					t.Fatalf("Remap: %v", err)
				}
				fullNl, err := Map(next, lib, p)
				if err != nil {
					t.Fatalf("Map: %v", err)
				}
				if !sameNetlist(incNl, fullNl) {
					t.Fatalf("trial %d step %d (%v): incremental netlist differs from full map (dirty %v)",
						trial, step, p.Cut, d)
				}
				// Correspondence sanity: every mapped net pair must have
				// identical cells and corresponding inputs.
				for n, pn := range nm {
					if pn < 0 || n < incNl.NumPIs {
						continue
					}
					g := &incNl.Gates[n-incNl.NumPIs]
					pg := &curState.nl.Gates[int(pn)-curState.nl.NumPIs]
					if g.Cell != pg.Cell {
						t.Fatalf("correspondence maps net %d to %d with different cells", n, pn)
					}
					for j := range g.Inputs {
						if nm[g.Inputs[j]] != pg.Inputs[j] {
							t.Fatalf("correspondence at net %d has mismatched inputs", n)
						}
					}
				}
				cur, curState = next, incState
			}
		}
	}
}

func TestRemapIdentityDelta(t *testing.T) {
	lib := cell.Builtin()
	rng := rand.New(rand.NewSource(5))
	g := randomAIG(rng, 6, 150, 4)
	nl, st, err := MapState(g, lib, DefaultParams)
	if err != nil {
		t.Fatalf("MapState: %v", err)
	}
	next, d := aig.Rebase(g, g)
	if d.NumDirty() != 0 {
		t.Fatalf("self-delta dirty: %v", d)
	}
	incNl, _, nm, err := Remap(st, next, d)
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	if !sameNetlist(incNl, nl) {
		t.Fatal("identity remap produced a different netlist")
	}
	for n, pn := range nm {
		if netlist.NetID(n) != pn {
			t.Fatalf("identity remap: net %d corresponds to %d", n, pn)
		}
	}
}

func TestRemapRejectsBogusDelta(t *testing.T) {
	lib := cell.Builtin()
	rng := rand.New(rand.NewSource(6))
	g := randomAIG(rng, 5, 60, 2)
	h := randomAIG(rng, 5, 70, 2)
	_, st, err := MapState(g, lib, DefaultParams)
	if err != nil {
		t.Fatalf("MapState: %v", err)
	}
	// A delta computed against a different graph must be rejected.
	_, d := aig.Rebase(h, h)
	if _, _, _, err := Remap(st, h, d); err == nil {
		// Rebase(h, h) against state of g: node counts differ, Validate
		// must catch it.
		t.Fatal("Remap accepted a delta for the wrong base graph")
	}
}

// FuzzIncrementalRemap mutates a random cone of a random AIG and
// cross-checks the incrementally remapped netlist against a
// from-scratch techmap.Map: the two must be structurally identical and
// functionally equivalent to the mutated AIG.
func FuzzIncrementalRemap(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(7), uint8(1))
	f.Add(int64(99), uint8(2))
	f.Add(int64(12345), uint8(3))
	lib := cell.Builtin()
	f.Fuzz(func(t *testing.T, seed int64, mode uint8) {
		rng := rand.New(rand.NewSource(seed))
		prev := randomAIG(rng, 3+rng.Intn(5), 10+rng.Intn(80), 1+rng.Intn(3))
		_, st, err := MapState(prev, lib, DefaultParams)
		if err != nil {
			t.Skip() // degenerate graph unmatchable; not the property under test
		}
		var raw *aig.AIG
		switch mode % 3 {
		case 0:
			raw = mutateAIG(prev, rng)
		case 1:
			// Pure re-strash (often a large matched prefix, zero or tiny cone).
			raw = prev.Compact()
		default:
			// Unrelated graph with the same PI count (everything dirty).
			raw = randomAIG(rng, prev.NumPIs(), 10+rng.Intn(80), prev.NumPOs())
		}
		next, d := aig.Rebase(prev, raw)
		if err := d.Validate(prev, next); err != nil {
			t.Fatalf("invalid delta: %v", err)
		}
		incNl, _, _, err := Remap(st, next, d)
		if err != nil {
			t.Fatalf("Remap: %v", err)
		}
		fullNl, err := Map(next, lib, DefaultParams)
		if err != nil {
			t.Fatalf("Map: %v", err)
		}
		if !sameNetlist(incNl, fullNl) {
			t.Fatalf("incremental netlist differs from full map (delta %v)", d)
		}
		// Functional cross-check against the AIG on random input vectors.
		piBits := make([]bool, next.NumPIs())
		for trial := 0; trial < 16; trial++ {
			for i := range piBits {
				piBits[i] = rng.Intn(2) == 1
			}
			got := incNl.Eval(piBits)
			ref := fullNl.Eval(piBits)
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("PO %d differs between incremental and full netlists", i)
				}
			}
		}
	})
}
