package techmap

import (
	"fmt"
	"math"

	"aigtimer/internal/aig"
	"aigtimer/internal/cell"
	"aigtimer/internal/cut"
	"aigtimer/internal/netlist"
	"aigtimer/internal/truth"
)

// Params configures mapping. The zero value of a field selects the
// DefaultParams value for that field.
type Params struct {
	// Cut bounds the priority-cut enumeration feeding match selection
	// (cut width K <= 4, cuts retained per node). Wider budgets find
	// better matches at roughly quadratic enumeration cost — the knob
	// signoff's high-effort second pass turns up.
	Cut cut.Params
	// NominalLoadFF is the output load (fF) assumed while ranking
	// matches and sizing gates; the real per-net load is only known
	// after emission, when STA measures it.
	NominalLoadFF float64
	// AreaRecovery enables the required-time sizing pass: off-critical
	// gates are downsized to the cheapest drive strength that still
	// meets the mapped netlist's own worst arrival. Structure never
	// changes, so area is monotonically non-increasing.
	AreaRecovery bool
}

// DefaultParams is a sensible delay-oriented configuration.
var DefaultParams = Params{
	Cut:           cut.Params{K: 4, MaxCuts: 8},
	NominalLoadFF: 4.0,
	AreaRecovery:  true,
}

// phase selects a signal polarity: pos is the node's function, neg its
// complement.
const (
	pos = 0
	neg = 1
)

type implKind uint8

const (
	kindNone implKind = iota
	kindGate          // a library cell over a cut
	kindInv           // inverter over the opposite phase
	kindWire          // alias of a leaf signal (degenerate cut function)
	kindTie           // constant cut function
)

// impl is one realization of (node, phase).
type impl struct {
	kind      implKind
	cutIdx    int
	match     cell.Match
	leaf      int32 // kindWire: aliased node
	leafPhase int   // kindWire: aliased phase
	tieVal    bool  // kindTie
	arrival   float64
	area      float64
}

// projections[j] is the padded table of "leaf j" as a function.
var projections = [4]uint16{
	truth.PadTo4(0xA, 2),
	truth.PadTo4(0xC, 2),
	truth.TransformPins(truth.PadTo4(0xA, 2), 4, []int{2, 0, 0, 0}, 0),
	truth.TransformPins(truth.PadTo4(0xA, 2), 4, []int{3, 0, 0, 0}, 0),
}

// markItem is one (node, phase) work unit of markUsed.
type markItem struct {
	n  int32
	ph int
}

// Scratch holds every per-call working buffer of the mapping pipeline —
// match selection state, area-recovery overlays, the emit memo, and the
// cut-enumeration scratch — reused across calls so a retained evaluation
// pipeline performs no steady-state allocations while mapping. A Scratch
// serves one mapping at a time.
type Scratch struct {
	direct [][2]impl
	used   [][2]bool
	req    [][2]float64
	sized  [][2]impl
	stack  []markItem
	inv    []int32
	memo   [2][]netlist.NetID
	nm     netlist.NetMap
	cands  []impl
	// xcands are candidate buffers for lanes 1+ of a parallel selection
	// (lane 0 uses cands); see BeginMappingWithCuts.
	xcands [][]impl
	cuts   cut.Scratch
	// m is the pipeline's mapper for the in-flight call. It lives here
	// rather than on the caller's stack because its address flows into
	// the emitter and would otherwise escape — one heap allocation per
	// mapping on an otherwise allocation-free path.
	m mapper
}

// mapper resets sc.m for a new mapping call and returns it.
func (sc *Scratch) mapper() *mapper {
	sc.m = mapper{}
	return &sc.m
}

// candBuf returns the candidate buffer owned by the given lane.
func (sc *Scratch) candBuf(lane int) *[]impl {
	if lane == 0 {
		return &sc.cands
	}
	return &sc.xcands[lane-1]
}

// growLanes makes candidate buffers for lanes 1..lanes-1 available.
func (sc *Scratch) growLanes(lanes int) {
	for len(sc.xcands) < lanes-1 {
		sc.xcands = append(sc.xcands, nil)
	}
}

// growImpls returns b resized to n, contents unspecified.
func growImpls(b [][2]impl, n int) [][2]impl {
	if cap(b) < n {
		return make([][2]impl, n)
	}
	return b[:n]
}

type mapper struct {
	g    *aig.AIG
	lib  *cell.Library
	p    Params
	cuts [][]cut.Cut
	// impls is the selectImpls output, retained by the State. eff is
	// what the global passes (markUsed, area recovery, emit) read: it
	// aliases impls until area recovery copies it into the sized overlay
	// — the pre-recovery impls are never mutated, so the State can
	// retain them without a defensive snapshot.
	impls [][2]impl
	eff   [][2]impl
	sc    *Scratch
}

// Map maps the AIG onto the library and returns the gate-level netlist.
// Use MapState instead to also retain the per-node mapping state that
// Remap needs for incremental re-mapping; Map itself skips that
// packaging (gate indexing), keeping the plain evaluation path lean.
func Map(g *aig.AIG, lib *cell.Library, p Params) (*netlist.Netlist, error) {
	m, err := runMapper(g, lib, p, nil, nil, nil)
	if err != nil {
		return nil, err
	}
	nl, _ := emitMapped(m, nil)
	return nl, nil
}

// invDelay returns the nominal delay of the shared inverter.
func (m *mapper) invDelay() float64 {
	return m.lib.Inverter().DelayPS(m.p.NominalLoadFF)
}

// arrivalOf returns the arrival time of (node, phase) under the
// effective implementation view, deriving the complement phase through
// an inverter when necessary.
func (m *mapper) arrivalOf(n int32, ph int) float64 {
	if !m.g.IsAnd(n) {
		// PIs and constants arrive at t=0; a PI's complement costs an
		// inverter, tie cells are free in either phase.
		if m.g.IsPI(n) && ph == neg {
			return m.invDelay()
		}
		return 0
	}
	return m.eff[n][ph].arrival
}

// selectImpls chooses the best implementation for both phases of every
// AND node with index >= from, in topological order. Impls of nodes
// below from must already be filled (the full pass starts at FirstAnd;
// the incremental pass starts past the translated matched prefix).
func (m *mapper) selectImpls(from int32) error {
	if from < m.g.FirstAnd() {
		from = m.g.FirstAnd()
	}
	for i := int(from); i < m.g.NumNodes(); i++ {
		if err := m.selectNode(int32(i), &m.sc.cands); err != nil {
			return err
		}
	}
	return nil
}

// selectNode chooses the best implementation for both phases of the AND
// node n, writing m.sc.direct[n] and m.impls[n] and reading only the
// impls of nodes inside n's cuts' leaf sets (all strictly below n).
// Candidates accumulate in *buf; distinct nodes computed with distinct
// buffers are independent, which is what lets a level of the graph be
// selected in parallel with results identical to the sequential loop.
func (m *mapper) selectNode(n int32, buf *[]impl) error {
	for ph := pos; ph <= neg; ph++ {
		best := impl{kind: kindNone, arrival: math.Inf(1)}
		for ci, c := range m.cuts[n] {
			if c.IsTrivial(n) || len(c.Leaves) == 0 {
				continue
			}
			tbl := c.Table
			if ph == neg {
				tbl = ^tbl
			}
			for _, cand := range m.cutCandidates(c, ci, tbl, buf) {
				if better(cand, best) {
					best = cand
				}
			}
		}
		m.sc.direct[n][ph] = best
	}
	// Relax with the inverter alternative: phase ph via INV over the
	// direct impl of the opposite phase.
	for ph := pos; ph <= neg; ph++ {
		best := m.sc.direct[n][ph]
		other := m.sc.direct[n][1-ph]
		if other.kind != kindNone {
			cand := impl{
				kind:    kindInv,
				arrival: other.arrival + m.invDelay(),
				area:    m.lib.Inverter().AreaUM2,
			}
			if better(cand, best) {
				best = cand
			}
		}
		if best.kind == kindNone {
			return fmt.Errorf("techmap: node %d phase %d unmatchable with library %s", n, ph, m.lib.Name)
		}
		m.impls[n][ph] = best
	}
	return nil
}

// cutCandidates yields all realizations of the table tbl over cut c —
// tie cells for constants, wires for projections, and library matches —
// in *buf (valid until the next call with the same buffer).
func (m *mapper) cutCandidates(c cut.Cut, ci int, tbl uint16, buf *[]impl) []impl {
	out := (*buf)[:0]
	switch tbl {
	case 0:
		out = append(out, impl{kind: kindTie, tieVal: false, area: m.lib.Tie(false).AreaUM2})
		*buf = out
		return out
	case 0xFFFF:
		out = append(out, impl{kind: kindTie, tieVal: true, area: m.lib.Tie(true).AreaUM2})
		*buf = out
		return out
	}
	for j := range c.Leaves {
		if tbl == projections[j] {
			out = append(out, impl{
				kind: kindWire, leaf: c.Leaves[j], leafPhase: pos,
				arrival: m.arrivalOf(c.Leaves[j], pos),
			})
		}
		if tbl == ^projections[j] {
			out = append(out, impl{
				kind: kindWire, leaf: c.Leaves[j], leafPhase: neg,
				arrival: m.arrivalOf(c.Leaves[j], neg),
			})
		}
	}
	for _, match := range m.lib.Matches(tbl, len(c.Leaves)) {
		out = append(out, m.evalMatch(c, ci, match))
	}
	*buf = out
	return out
}

// evalMatch scores a cut/cell pairing under the nominal-load delay model.
func (m *mapper) evalMatch(c cut.Cut, cutIdx int, match cell.Match) impl {
	d := match.Cell.DelayPS(m.p.NominalLoadFF)
	arr := 0.0
	for j := 0; j < match.Cell.NumInputs; j++ {
		leaf := c.Leaves[match.PinVar[j]]
		ph := pos
		if match.PinInv>>j&1 == 1 {
			ph = neg
		}
		if a := m.arrivalOf(leaf, ph); a > arr {
			arr = a
		}
	}
	return impl{
		kind:    kindGate,
		cutIdx:  cutIdx,
		match:   match,
		arrival: arr + d,
		area:    match.Cell.AreaUM2,
	}
}

// better orders implementations by (arrival, area).
func better(a, b impl) bool {
	if a.kind == kindNone {
		return false
	}
	if b.kind == kindNone {
		return true
	}
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	return a.area < b.area
}

// markUsed flags the (node, phase) pairs reachable from the POs through
// the chosen implementations.
func (m *mapper) markUsed() {
	m.sc.used = m.sc.used[:0]
	if cap(m.sc.used) < m.g.NumNodes() {
		m.sc.used = make([][2]bool, m.g.NumNodes())
	}
	m.sc.used = m.sc.used[:m.g.NumNodes()]
	for i := range m.sc.used {
		m.sc.used[i] = [2]bool{}
	}
	used := m.sc.used
	stack := m.sc.stack[:0]
	push := func(n int32, ph int) {
		if !m.g.IsAnd(n) {
			return
		}
		if !used[n][ph] {
			used[n][ph] = true
			stack = append(stack, markItem{n, ph})
		}
	}
	for _, po := range m.g.POs() {
		push(po.Node(), phaseOf(po))
	}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		im := m.eff[it.n][it.ph]
		switch im.kind {
		case kindInv:
			push(it.n, 1-it.ph)
		case kindWire:
			push(im.leaf, im.leafPhase)
		case kindGate:
			c := m.cuts[it.n][im.cutIdx]
			for j := 0; j < im.match.Cell.NumInputs; j++ {
				ph := pos
				if im.match.PinInv>>j&1 == 1 {
					ph = neg
				}
				push(c.Leaves[im.match.PinVar[j]], ph)
			}
		}
	}
	m.sc.stack = stack
}

func phaseOf(l aig.Lit) int {
	if l.IsCompl() {
		return neg
	}
	return pos
}

// recoverArea downsizes drive strengths off the critical path: for every
// used gate implementation, the cheapest cell with identical function and
// identical pin wiring that still meets the required time is selected.
// Because only the cell choice changes (never the structure), the total
// area is monotonically non-increasing.
//
// The pass operates on the sized overlay (m.eff), never on the
// selectImpls output: m.impls survives unmodified for the State to
// retain, which is what lets Remap translate pre-recovery choices
// without any defensive copy.
func (m *mapper) recoverArea() {
	m.sc.sized = growImpls(m.sc.sized, m.g.NumNodes())
	copy(m.sc.sized, m.impls)
	m.eff = m.sc.sized
	m.markUsed()
	used := m.sc.used
	if cap(m.sc.req) < m.g.NumNodes() {
		m.sc.req = make([][2]float64, m.g.NumNodes())
	}
	m.sc.req = m.sc.req[:m.g.NumNodes()]
	req := m.sc.req
	for i := range req {
		req[i][pos] = math.Inf(1)
		req[i][neg] = math.Inf(1)
	}
	maxArr := 0.0
	for _, po := range m.g.POs() {
		if a := m.arrivalOf(po.Node(), phaseOf(po)); a > maxArr {
			maxArr = a
		}
	}
	for _, po := range m.g.POs() {
		n := po.Node()
		ph := phaseOf(po)
		if m.g.IsAnd(n) && req[n][ph] > maxArr {
			req[n][ph] = maxArr
		}
	}
	// Propagate requirements in reverse topological order.
	for n := int32(m.g.NumNodes() - 1); n >= m.g.FirstAnd(); n-- {
		for ph := pos; ph <= neg; ph++ {
			if !used[n][ph] || math.IsInf(req[n][ph], 1) {
				continue
			}
			im := m.eff[n][ph]
			switch im.kind {
			case kindInv:
				lower(&req[n][1-ph], req[n][ph]-m.invDelay())
			case kindWire:
				if m.g.IsAnd(im.leaf) {
					lower(&req[im.leaf][im.leafPhase], req[n][ph])
				}
			case kindGate:
				c := m.cuts[n][im.cutIdx]
				d := im.match.Cell.DelayPS(m.p.NominalLoadFF)
				for j := 0; j < im.match.Cell.NumInputs; j++ {
					lph := pos
					if im.match.PinInv>>j&1 == 1 {
						lph = neg
					}
					leaf := c.Leaves[im.match.PinVar[j]]
					if m.g.IsAnd(leaf) {
						lower(&req[leaf][lph], req[n][ph]-d)
					}
				}
			}
		}
	}
	// Sizing pass in topological order: arrivals can only improve, so a
	// single forward pass is sound.
	m.g.TopoForEachAnd(func(n int32, f0, f1 aig.Lit) {
		for ph := pos; ph <= neg; ph++ {
			if !used[n][ph] {
				continue
			}
			im := m.eff[n][ph]
			if im.kind != kindGate {
				continue
			}
			r := req[n][ph]
			c := m.cuts[n][im.cutIdx]
			tbl := c.Table
			if ph == neg {
				tbl = ^tbl
			}
			best := m.evalMatch(c, im.cutIdx, im.match) // refresh arrival
			for _, match := range m.lib.Matches(tbl, len(c.Leaves)) {
				if match.PinVar != im.match.PinVar || match.PinInv != im.match.PinInv {
					continue
				}
				cand := m.evalMatch(c, im.cutIdx, match)
				if cand.arrival <= r && (cand.area < best.area ||
					(cand.area == best.area && cand.arrival < best.arrival)) {
					best = cand
				}
			}
			m.eff[n][ph] = best
		}
	})
}

func lower(dst *float64, v float64) {
	if v < *dst {
		*dst = v
	}
}

// emit materializes the effective implementations as a netlist built
// into nlRecycle's storage (nil builds fresh). Alongside the netlist it
// returns, per emitted gate, the (node, phase) key whose implementation
// created it — the correspondence raw material the incremental path uses
// to relate the nets of successive mappings (see Remap). The
// (node, phase) -> net memo lives in the Scratch and is valid until its
// next use.
func (m *mapper) emit(nlRecycle *netlist.Netlist, gateKeys [][2]int32) (*netlist.Netlist, [][2]int32) {
	for ph := 0; ph < 2; ph++ {
		if cap(m.sc.memo[ph]) < m.g.NumNodes() {
			m.sc.memo[ph] = make([]netlist.NetID, m.g.NumNodes())
		}
		m.sc.memo[ph] = m.sc.memo[ph][:m.g.NumNodes()]
		for i := range m.sc.memo[ph] {
			m.sc.memo[ph][i] = -1
		}
	}
	// A method-based emitter rather than recursive closures: a closure
	// that captures itself escapes to the heap, and emit runs on the
	// steady-state delta path.
	e := emitter{m: m, nb: netlist.MakeBuilder(m.lib, m.g.NumPIs(), nlRecycle), gateKeys: gateKeys[:0]}
	for _, po := range m.g.POs() {
		e.nb.AddPO(e.need(po.Node(), phaseOf(po)))
	}
	return e.nb.Build(), e.gateKeys
}

// emitter carries the in-progress emission state through need's
// recursion.
type emitter struct {
	m        *mapper
	nb       netlist.Builder
	gateKeys [][2]int32
}

// addGate instantiates a cell and records its creator key.
func (e *emitter) addGate(key [2]int32, c *cell.Cell, ins ...netlist.NetID) netlist.NetID {
	net := e.nb.AddGate(c, ins...)
	e.gateKeys = append(e.gateKeys, key)
	return net
}

// need returns the net realizing (node, phase), emitting it on first use.
func (e *emitter) need(n int32, ph int) netlist.NetID {
	m := e.m
	if net := m.sc.memo[ph][n]; net >= 0 {
		return net
	}
	key := [2]int32{n, int32(ph)}
	var net netlist.NetID
	switch {
	case n == 0: // constant false node
		net = e.addGate(key, m.lib.Tie(ph == neg))
	case m.g.IsPI(n):
		if ph == pos {
			net = e.nb.PINet(int(n) - 1)
		} else {
			net = e.addGate(key, m.lib.Inverter(), e.nb.PINet(int(n)-1))
		}
	default:
		im := m.eff[n][ph]
		switch im.kind {
		case kindInv:
			net = e.addGate(key, m.lib.Inverter(), e.need(n, 1-ph))
		case kindWire:
			net = e.need(im.leaf, im.leafPhase)
		case kindTie:
			net = e.addGate(key, m.lib.Tie(im.tieVal))
		case kindGate:
			c := m.cuts[n][im.cutIdx]
			var insArr [4]netlist.NetID
			ins := insArr[:im.match.Cell.NumInputs]
			for j := range ins {
				lph := pos
				if im.match.PinInv>>j&1 == 1 {
					lph = neg
				}
				ins[j] = e.need(c.Leaves[im.match.PinVar[j]], lph)
			}
			net = e.addGate(key, im.match.Cell, ins...)
		default:
			panic("techmap: emitting unimplemented node")
		}
	}
	m.sc.memo[ph][n] = net
	return net
}
