package techmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aigtimer/internal/aig"
	"aigtimer/internal/cell"
	"aigtimer/internal/cut"
	"aigtimer/internal/sta"
)

func randomAIG(rng *rand.Rand, numPIs, numAnds, numPOs int) *aig.AIG {
	b := aig.NewBuilder(numPIs)
	lits := make([]aig.Lit, 0, numPIs+numAnds)
	for i := 0; i < numPIs; i++ {
		lits = append(lits, b.PI(i))
	}
	for len(lits) < numPIs+numAnds {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		c := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, b.And(a, c))
	}
	for i := 0; i < numPOs; i++ {
		b.AddPO(lits[len(lits)-1-rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0))
	}
	return b.Build()
}

// equivalentMapped exhaustively compares AIG and netlist functions.
func equivalentMapped(t *testing.T, g *aig.AIG, nlEval func([]bool) []bool) bool {
	t.Helper()
	pats := aig.ExhaustivePatterns(g.NumPIs())
	res := g.Simulate(pats)
	nBits := 1 << g.NumPIs()
	piBits := make([]bool, g.NumPIs())
	for m := 0; m < nBits; m++ {
		for i := range piBits {
			piBits[i] = m>>i&1 == 1
		}
		got := nlEval(piBits)
		for i := 0; i < g.NumPOs(); i++ {
			v := res.LitValues(g.PO(i))
			want := v[m/64]>>(m%64)&1 == 1
			if got[i] != want {
				t.Logf("mismatch at minterm %d PO %d: netlist=%v aig=%v", m, i, got[i], want)
				return false
			}
		}
	}
	return true
}

func TestMapSimpleFunctions(t *testing.T) {
	lib := cell.Builtin()
	b := aig.NewBuilder(4)
	and := b.And(b.PI(0), b.PI(1))
	or := b.Or(b.PI(2), b.PI(3))
	xor := b.Xor(b.PI(0), b.PI(2))
	b.AddPO(and)
	b.AddPO(or)
	b.AddPO(xor)
	b.AddPO(and.Not())
	g := b.Build()

	nl, err := Map(g, lib, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if !equivalentMapped(t, g, nl.Eval) {
		t.Fatal("mapped netlist not equivalent")
	}
	// XOR should map to a single XOR cell rather than 4 NANDs when delay
	// allows; at minimum the netlist must be small.
	if nl.NumGates() > 12 {
		t.Errorf("suspiciously large netlist: %d gates", nl.NumGates())
	}
}

func TestMapConstantsAndPassthrough(t *testing.T) {
	lib := cell.Builtin()
	b := aig.NewBuilder(2)
	b.AddPO(aig.ConstFalse)
	b.AddPO(aig.ConstTrue)
	b.AddPO(b.PI(0))
	b.AddPO(b.PI(1).Not())
	g := b.Build()
	nl, err := Map(g, lib, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if !equivalentMapped(t, g, nl.Eval) {
		t.Fatal("constant/passthrough mapping wrong")
	}
	// Expect exactly: TIE0, TIE1, INV -> 3 gates.
	if nl.NumGates() != 3 {
		t.Errorf("gates = %d, want 3", nl.NumGates())
	}
}

func TestPropertyMappingPreservesFunction(t *testing.T) {
	lib := cell.Builtin()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAIG(rng, 3+rng.Intn(6), 5+rng.Intn(60), 1+rng.Intn(5))
		nl, err := Map(g, lib, DefaultParams)
		if err != nil {
			return false
		}
		return equivalentMapped(t, g, nl.Eval)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAreaRecoveryDoesNotHurtDelayMuch(t *testing.T) {
	lib := cell.Builtin()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 10; i++ {
		g := randomAIG(rng, 8, 120, 6)
		pDelay := DefaultParams
		pDelay.AreaRecovery = false
		pArea := DefaultParams
		pArea.AreaRecovery = true

		nlD, err := Map(g, lib, pDelay)
		if err != nil {
			t.Fatal(err)
		}
		nlA, err := Map(g, lib, pArea)
		if err != nil {
			t.Fatal(err)
		}
		if !equivalentMapped(t, g, nlA.Eval) {
			t.Fatal("area recovery broke function")
		}
		if nlA.AreaUM2() > nlD.AreaUM2()*1.001 {
			t.Errorf("area recovery increased area: %.2f -> %.2f", nlD.AreaUM2(), nlA.AreaUM2())
		}
		rD := sta.Analyze(nlD)
		rA := sta.Analyze(nlA)
		// The nominal-load model is approximate, so allow modest drift,
		// but area recovery must not blow up the real delay.
		if rA.MaxDelayPS > rD.MaxDelayPS*1.35+50 {
			t.Errorf("area recovery hurt delay too much: %.1f -> %.1f ps", rD.MaxDelayPS, rA.MaxDelayPS)
		}
	}
}

func TestMapperUsesComplexCells(t *testing.T) {
	lib := cell.Builtin()
	rng := rand.New(rand.NewSource(23))
	g := randomAIG(rng, 8, 200, 6)
	nl, err := Map(g, lib, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	multiInput := 0
	for _, h := range nl.CellHistogram() {
		c := lib.CellByName(h.Name)
		if c != nil && c.NumInputs >= 3 {
			multiInput += h.Count
		}
	}
	if multiInput == 0 {
		t.Errorf("mapper never used 3/4-input cells; histogram: %+v", nl.CellHistogram())
	}
	// Mapping must compress depth relative to the AIG (cell merging), the
	// paper's first source of proxy miscorrelation.
	if d := nl.LogicDepth(); d > int(g.MaxLevel()) {
		t.Errorf("mapped depth %d exceeds AIG levels %d", d, g.MaxLevel())
	}
}

func TestMapParamsDefaults(t *testing.T) {
	lib := cell.Builtin()
	rng := rand.New(rand.NewSource(29))
	g := randomAIG(rng, 5, 30, 3)
	// Zero-valued params should be filled with defaults.
	nl, err := Map(g, lib, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !equivalentMapped(t, g, nl.Eval) {
		t.Fatal("default-params mapping wrong")
	}
}

func TestMapSmallCutBudget(t *testing.T) {
	lib := cell.Builtin()
	rng := rand.New(rand.NewSource(31))
	g := randomAIG(rng, 6, 80, 4)
	p := DefaultParams
	p.Cut = cut.Params{K: 2, MaxCuts: 2}
	nl, err := Map(g, lib, p)
	if err != nil {
		t.Fatal(err)
	}
	if !equivalentMapped(t, g, nl.Eval) {
		t.Fatal("k=2 mapping wrong")
	}
}
