package transform

import (
	"math/rand"
	"sort"

	"aigtimer/internal/aig"
)

// Balance rebuilds every multi-input AND tree with minimum depth: the
// conjuncts of each tree are combined two at a time, always pairing the
// two shallowest (a Huffman-style reduction). It is the analogue of ABC's
// "balance" command and is the primary level-reducing transform.
func Balance(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	return balanceImpl(g, rng, false)
}

// BalanceRandom rebuilds AND trees with random association instead of
// depth-minimal association. It preserves function while perturbing both
// level and sharing structure, providing diversity moves for annealing
// (the structural analogue of exploring a different ABC script ordering).
func BalanceRandom(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	return balanceImpl(g, rng, true)
}

func balanceImpl(g *aig.AIG, rng *rand.Rand, randomize bool) *aig.AIG {
	fo := g.FanoutCounts()
	r := newRebuilder(g)
	done := make([]bool, g.NumNodes())

	var build func(n int32)
	build = func(n int32) {
		if done[n] || !g.IsAnd(n) {
			return
		}
		done[n] = true
		conj := collectConjuncts(g, n, fo)
		// Map every conjunct first (recursively balancing sub-trees).
		lits := make([]aig.Lit, len(conj))
		for i, c := range conj {
			build(c.Node())
			lits[i] = r.lit(c)
		}
		if randomize {
			rng.Shuffle(len(lits), func(i, j int) { lits[i], lits[j] = lits[j], lits[i] })
			out := lits[0]
			for _, l := range lits[1:] {
				out = r.nb.And(out, l)
			}
			r.m[n] = out
			return
		}
		// Min-depth pairing: repeatedly combine the two shallowest.
		for len(lits) > 1 {
			sort.SliceStable(lits, func(i, j int) bool {
				return r.nb.LevelOf(lits[i]) < r.nb.LevelOf(lits[j])
			})
			merged := r.nb.And(lits[0], lits[1])
			lits = append([]aig.Lit{merged}, lits[2:]...)
		}
		r.m[n] = lits[0]
	}

	g.TopoForEachAnd(func(n int32, f0, f1 aig.Lit) { build(n) })
	return r.finish()
}

// collectConjuncts gathers the leaves of the AND tree rooted at n:
// fanin edges are followed while they are non-complemented references to
// single-fanout AND nodes (the classic balance decomposition boundary).
func collectConjuncts(g *aig.AIG, n int32, fanouts []int32) []aig.Lit {
	var out []aig.Lit
	var visit func(l aig.Lit)
	visit = func(l aig.Lit) {
		nn := l.Node()
		if !l.IsCompl() && g.IsAnd(nn) && fanouts[nn] == 1 {
			f0, f1 := g.Fanins(nn)
			visit(f0)
			visit(f1)
			return
		}
		out = append(out, l)
	}
	f0, f1 := g.Fanins(n)
	visit(f0)
	visit(f1)
	return out
}
