// Package transform implements functionally-equivalence-preserving AIG
// transformations: the "logic transformations available in ABC" that the
// paper's optimization flows apply at every iteration.
//
// The basic transforms are:
//
//	balance    (b)   rebuild AND trees with minimum depth
//	balance -r (br)  rebuild AND trees with randomized association
//	rewrite    (rw)  4-cut resynthesis, accepted on strict node gain
//	rewrite -z (rwz) 4-cut resynthesis, accepted on non-negative gain
//	refactor   (rf)  large-cone ISOP refactoring, strict gain
//	refactor -z (rfz) large-cone refactoring, non-negative gain
//	resub      (rs)  node resubstitution over existing divisors
//	resub -z   (rsz) resubstitution with zero-gain moves allowed
//	expand     (ex)  deliberate restructuring into two-level form
//	                 (diversity move: typically increases node count)
//	fraig      (fr)  merge simulation-equivalent nodes
//
// Each transform takes a random source used for tie-breaking and move
// sampling, so repeated application yields the diverse space of equivalent
// AIGs from which the paper draws its 40,000 variants per design.
//
// # Contract
//
// Every transform preserves functional equivalence (the property tests
// check it against exhaustive/random simulation), returns a compacted
// AIG (no dangling nodes), and is deterministic given its random source
// — the annealer's per-iteration RNG streams turn that into
// bit-reproducible move sequences.
//
// Recipes are named compositions of transforms — the annealer's move
// catalog. Recipe.Apply produces the derived graph; Recipe.ApplyTracked
// additionally rebases the result against its input (aig.Rebase), so
// the candidate carries the (base, delta) provenance the incremental
// evaluation path keys on. Tracking never changes the produced
// structure, only its node numbering and recorded ancestry — Rebase is
// a pure renumbering — so trajectories are identical with and without
// it.
package transform
