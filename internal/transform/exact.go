package transform

import (
	"math/bits"
	"sync"

	"aigtimer/internal/aig"
)

// Exact verification of candidate node equivalences. Random simulation is
// an efficient screen but cannot *prove* equivalence: two functions that
// differ on a handful of minterms will usually survive thousands of random
// patterns. Since this repository is SAT-free, candidate merges are
// instead verified by exact truth-table evaluation of both cones over the
// union of their primary-input supports — and candidates whose union
// support exceeds exactVerifyMaxSupport are conservatively rejected. This
// keeps every transform exactly function-preserving.

// exactVerifyMaxSupport bounds the union support for exact verification
// (2^12 bits = 64 words per table). Larger-support candidates are
// conservatively rejected: correctness is never traded for optimization
// power, and the bound keeps the verifier cheap enough for the annealing
// inner loop.
const exactVerifyMaxSupport = 12

// verWords is the table width, in 64-bit words, at the support bound.
const verWords = 1 << (exactVerifyMaxSupport - 6)

// verScratch is the reusable working state of a verifier: the support
// masks, the PI-to-variable map, and a flat epoch-stamped truth-table memo
// (one slot of the current call's word count per node, replacing the old
// per-call map[int32]truth.TT). Pooled so the annealing inner loop pays
// no steady-state allocation for exact checks.
type verScratch struct {
	sup    []uint64
	vm     [64]int
	memoW  []uint64 // NumNodes × wpk words, slot i starting at i*wpk
	memoEp []uint32 // per-node epoch stamp validating memoW slots
	epoch  uint32
}

var verScratchPool = sync.Pool{New: func() any { return new(verScratch) }}

// verifier performs exact cone comparisons over bounded supports.
type verifier struct {
	g *aig.AIG
	s *verScratch
}

func newVerifier(g *aig.AIG) *verifier {
	s := verScratchPool.Get().(*verScratch)
	piSupports(g, s)
	return &verifier{g: g, s: s}
}

// release returns the verifier's scratch to the shared pool. Safe on nil.
func (v *verifier) release() {
	if v == nil {
		return
	}
	s := v.s
	v.s = nil
	verScratchPool.Put(s)
}

// piSupports fills s.sup with, per node, the bitmask of primary inputs in
// its transitive fanin. Panics when the design has more than 64 inputs
// (far beyond the paper's suite).
func piSupports(g *aig.AIG, s *verScratch) {
	if g.NumPIs() > 64 {
		panic("transform: piSupports supports at most 64 PIs")
	}
	s.sup = growUint64(s.sup, g.NumNodes())
	sup := s.sup
	sup[0] = 0
	for i := 1; i <= g.NumPIs(); i++ {
		sup[i] = 1 << (i - 1)
	}
	g.TopoForEachAnd(func(n int32, f0, f1 aig.Lit) {
		sup[n] = sup[f0.Node()] | sup[f1.Node()]
	})
}

// growUint64 returns b resized to n elements, reusing capacity. Contents
// are unspecified.
func growUint64(b []uint64, n int) []uint64 {
	if cap(b) < n {
		return make([]uint64, n)
	}
	return b[:n]
}

// beginEval prepares the memo for one exact comparison over k variables
// and returns the per-node slot width in words. Tables with k < 6
// variables still use one word with the value replicated (the same
// invariant truth.TT maintains), so all comparisons are plain word
// equality.
func (v *verifier) beginEval(k int) int {
	wpk := 1
	if k > 6 {
		wpk = 1 << (k - 6)
	}
	s := v.s
	need := v.g.NumNodes() * wpk
	if cap(s.memoW) < need {
		s.memoW = make([]uint64, need)
	} else {
		s.memoW = s.memoW[:need]
	}
	if len(s.memoEp) < v.g.NumNodes() {
		s.memoEp = make([]uint32, v.g.NumNodes())
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // epoch counter wrapped: invalidate all stamps
		clear(s.memoEp)
		s.epoch = 1
	}
	return wpk
}

// varMap assigns truth-table variable positions to the PIs in mask.
func (v *verifier) varMap(mask uint64) int {
	k := 0
	for pi := 0; pi < 64; pi++ {
		if mask>>pi&1 == 1 {
			v.s.vm[pi] = k
			k++
		}
	}
	return k
}

// varFill writes the projection table of variable x (of k) into dst,
// replicated across the word for x < 6 — mirroring truth.Var.
var varMasks = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

func varFill(dst []uint64, x int) {
	if x < 6 {
		m := varMasks[x]
		for i := range dst {
			dst[i] = m
		}
		return
	}
	period := 1 << (x - 6 + 1)
	half := 1 << (x - 6)
	for i := range dst {
		if i%period >= half {
			dst[i] = ^uint64(0)
		} else {
			dst[i] = 0
		}
	}
}

// coneTT evaluates node n's function into its memo slot and returns the
// slot. AND nodes fuse the fanin complements into the conjunction, so a
// cone evaluation performs zero allocations and writes each word exactly
// once.
func (v *verifier) coneTT(n int32, wpk int) []uint64 {
	s := v.s
	slot := s.memoW[int(n)*wpk : int(n)*wpk+wpk]
	if s.memoEp[n] == s.epoch {
		return slot
	}
	switch {
	case n == 0:
		for i := range slot {
			slot[i] = 0
		}
	case v.g.IsPI(n):
		varFill(slot, s.vm[n-1])
	default:
		f0, f1 := v.g.Fanins(n)
		t0 := v.coneTT(f0.Node(), wpk)
		t1 := v.coneTT(f1.Node(), wpk)
		var m0, m1 uint64
		if f0.IsCompl() {
			m0 = ^uint64(0)
		}
		if f1.IsCompl() {
			m1 = ^uint64(0)
		}
		for i := range slot {
			slot[i] = (t0[i] ^ m0) & (t1[i] ^ m1)
		}
	}
	s.memoEp[n] = s.epoch
	return slot
}

// verifiable reports whether the union support of the given nodes is
// small enough for exact verification; callers use it to skip screening
// candidates that could never be accepted.
func (v *verifier) verifiable(nodes ...int32) bool {
	var mask uint64
	for _, n := range nodes {
		mask |= v.s.sup[n]
	}
	return bits.OnesCount64(mask) <= exactVerifyMaxSupport
}

// equal proves (or refutes) a == b up to the given complement. The second
// return is false when the union support is too large to verify, in which
// case the caller must not merge.
func (v *verifier) equal(a, b int32, compl bool) (eq, verified bool) {
	mask := v.s.sup[a] | v.s.sup[b]
	if bits.OnesCount64(mask) > exactVerifyMaxSupport {
		return false, false
	}
	k := v.varMap(mask)
	wpk := v.beginEval(k)
	ta := v.coneTT(a, wpk)
	tb := v.coneTT(b, wpk)
	var mc uint64
	if compl {
		mc = ^uint64(0)
	}
	for i := range ta {
		if ta[i]^tb[i]^mc != 0 {
			return false, true
		}
	}
	return true, true
}

// andEquals proves n == outC ^ ((d0^i0) · (d1^i1)) exactly, with the same
// support bound.
func (v *verifier) andEquals(n, d0, d1 int32, i0, i1, outC bool) (eq, verified bool) {
	mask := v.s.sup[n] | v.s.sup[d0] | v.s.sup[d1]
	if bits.OnesCount64(mask) > exactVerifyMaxSupport {
		return false, false
	}
	k := v.varMap(mask)
	wpk := v.beginEval(k)
	tn := v.coneTT(n, wpk)
	t0 := v.coneTT(d0, wpk)
	t1 := v.coneTT(d1, wpk)
	var m0, m1, mo uint64
	if i0 {
		m0 = ^uint64(0)
	}
	if i1 {
		m1 = ^uint64(0)
	}
	if outC {
		mo = ^uint64(0)
	}
	for i := range tn {
		if (t0[i]^m0)&(t1[i]^m1)^mo != tn[i] {
			return false, true
		}
	}
	return true, true
}
