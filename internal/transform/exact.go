package transform

import (
	"math/bits"

	"aigtimer/internal/aig"
	"aigtimer/internal/truth"
)

// Exact verification of candidate node equivalences. Random simulation is
// an efficient screen but cannot *prove* equivalence: two functions that
// differ on a handful of minterms will usually survive thousands of random
// patterns. Since this repository is SAT-free, candidate merges are
// instead verified by exact truth-table evaluation of both cones over the
// union of their primary-input supports — and candidates whose union
// support exceeds exactVerifyMaxSupport are conservatively rejected. This
// keeps every transform exactly function-preserving.

// exactVerifyMaxSupport bounds the union support for exact verification
// (2^12 bits = 64 words per table). Larger-support candidates are
// conservatively rejected: correctness is never traded for optimization
// power, and the bound keeps the verifier cheap enough for the annealing
// inner loop.
const exactVerifyMaxSupport = 12

// piSupports returns, per node, the bitmask of primary inputs in its
// transitive fanin. Panics when the design has more than 64 inputs (far
// beyond the paper's suite).
func piSupports(g *aig.AIG) []uint64 {
	if g.NumPIs() > 64 {
		panic("transform: piSupports supports at most 64 PIs")
	}
	sup := make([]uint64, g.NumNodes())
	for i := 1; i <= g.NumPIs(); i++ {
		sup[i] = 1 << (i - 1)
	}
	g.TopoForEachAnd(func(n int32, f0, f1 aig.Lit) {
		sup[n] = sup[f0.Node()] | sup[f1.Node()]
	})
	return sup
}

// verifier performs exact cone comparisons over bounded supports.
type verifier struct {
	g   *aig.AIG
	sup []uint64
}

func newVerifier(g *aig.AIG) *verifier {
	return &verifier{g: g, sup: piSupports(g)}
}

// varMap assigns truth-table variable positions to the PIs in mask.
func varMap(mask uint64) ([]int, int) {
	m := make([]int, 64)
	k := 0
	for pi := 0; pi < 64; pi++ {
		if mask>>pi&1 == 1 {
			m[pi] = k
			k++
		}
	}
	return m, k
}

// coneTT evaluates node n's function as a truth table over the k support
// variables assigned by vm.
func (v *verifier) coneTT(n int32, vm []int, k int, memo map[int32]truth.TT) truth.TT {
	if t, ok := memo[n]; ok {
		return t
	}
	var t truth.TT
	switch {
	case n == 0:
		t = truth.New(k)
	case v.g.IsPI(n):
		t = truth.Var(k, vm[n-1])
	default:
		f0, f1 := v.g.Fanins(n)
		t0 := v.coneTT(f0.Node(), vm, k, memo)
		t1 := v.coneTT(f1.Node(), vm, k, memo)
		if f0.IsCompl() {
			t0 = t0.Not()
		}
		if f1.IsCompl() {
			t1 = t1.Not()
		}
		t = t0.And(t1)
	}
	memo[n] = t
	return t
}

// verifiable reports whether the union support of the given nodes is
// small enough for exact verification; callers use it to skip screening
// candidates that could never be accepted.
func (v *verifier) verifiable(nodes ...int32) bool {
	var mask uint64
	for _, n := range nodes {
		mask |= v.sup[n]
	}
	return bits.OnesCount64(mask) <= exactVerifyMaxSupport
}

// equal proves (or refutes) a == b up to the given complement. The second
// return is false when the union support is too large to verify, in which
// case the caller must not merge.
func (v *verifier) equal(a, b int32, compl bool) (eq, verified bool) {
	mask := v.sup[a] | v.sup[b]
	k := bits.OnesCount64(mask)
	if k > exactVerifyMaxSupport {
		return false, false
	}
	vm, k := varMap(mask)
	memo := make(map[int32]truth.TT)
	ta := v.coneTT(a, vm, k, memo)
	tb := v.coneTT(b, vm, k, memo)
	if compl {
		tb = tb.Not()
	}
	return ta.Equal(tb), true
}

// andEquals proves n == outC ^ ((d0^i0) · (d1^i1)) exactly, with the same
// support bound.
func (v *verifier) andEquals(n, d0, d1 int32, i0, i1, outC bool) (eq, verified bool) {
	mask := v.sup[n] | v.sup[d0] | v.sup[d1]
	k := bits.OnesCount64(mask)
	if k > exactVerifyMaxSupport {
		return false, false
	}
	vm, k := varMap(mask)
	memo := make(map[int32]truth.TT)
	tn := v.coneTT(n, vm, k, memo)
	t0 := v.coneTT(d0, vm, k, memo)
	t1 := v.coneTT(d1, vm, k, memo)
	if i0 {
		t0 = t0.Not()
	}
	if i1 {
		t1 = t1.Not()
	}
	t := t0.And(t1)
	if outC {
		t = t.Not()
	}
	return tn.Equal(t), true
}
