package transform

import (
	"math/rand"

	"aigtimer/internal/aig"
)

// MergeEquiv merges functionally equivalent nodes (in either polarity),
// the simulation-based core of fraiging / SAT sweeping. Equivalence is
// established exhaustively for designs with at most 14 primary inputs;
// above that, 256 words (16,384 patterns) of seeded random simulation
// screen candidates and every merge is then proven by exact truth-table
// comparison of the two cones over their union PI support (merges whose
// union support exceeds 16 inputs are conservatively skipped). All merges
// are therefore exact; no SAT solver is needed.
func MergeEquiv(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	ms := getMoveScratch()
	defer putMoveScratch(ms)
	var res *aig.SimResult
	sim := ms.simulator(g)
	exhaustive := g.NumPIs() <= 14
	if exhaustive {
		res = sim.SimulateWords(exhaustivePatterns(g.NumPIs()), aig.ExhaustiveWords(g.NumPIs()))
	} else {
		simRng := rand.New(rand.NewSource(rng.Int63()))
		res = sim.SimulateWords(aig.RandomPatterns(g.NumPIs(), 256, simRng), 256)
	}
	var ver *verifier
	if !exhaustive {
		ver = newVerifier(g)
	}
	defer ver.release()

	type class struct {
		rep      int32
		repPhase bool // canonical phase of representative
	}
	classes := make(map[uint64]class)
	canonKey := func(n int32) (uint64, bool) {
		v := res.Values[n]
		phase := v[0]&1 == 1 // complement so bit 0 is always 0
		const prime = 1099511628211
		h := uint64(14695981039346656037)
		for _, w := range v {
			if phase {
				w = ^w
			}
			h ^= w
			h *= prime
		}
		return h, phase
	}

	r := newRebuilder(g)
	g.TopoForEachAnd(func(n int32, f0, f1 aig.Lit) {
		key, phase := canonKey(n)
		if cl, ok := classes[key]; ok && sameFunction(res, n, cl.rep, phase != cl.repPhase) {
			// Exhaustive simulation is itself a proof; otherwise demand an
			// exact cone check before merging.
			merge := exhaustive
			if !merge {
				eq, verified := ver.equal(n, cl.rep, phase != cl.repPhase)
				merge = verified && eq
			}
			if merge {
				r.m[n] = r.m[cl.rep].NotIf(phase != cl.repPhase)
				return
			}
		}
		if _, ok := classes[key]; !ok {
			classes[key] = class{rep: n, repPhase: phase}
		}
		r.copyNode(n, f0, f1)
	})
	return r.finish()
}

// sameFunction verifies word-for-word that nodes a and b simulate
// identically (up to the given complement), guarding against hash
// collisions.
func sameFunction(res *aig.SimResult, a, b int32, compl bool) bool {
	va, vb := res.Values[a], res.Values[b]
	for i := range va {
		w := vb[i]
		if compl {
			w = ^w
		}
		if va[i] != w {
			return false
		}
	}
	return true
}
