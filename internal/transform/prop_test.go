package transform

import (
	"math/rand"
	"testing"

	"aigtimer/internal/aig"
)

// randAIG builds a pseudo-random strashed AIG for property testing.
func randAIG(rng *rand.Rand, pis, ands, pos int) *aig.AIG {
	b := aig.NewBuilder(pis)
	lits := []aig.Lit{aig.ConstFalse}
	for i := 0; i < pis; i++ {
		lits = append(lits, b.PI(i))
	}
	for tries := 0; b.NumAnds() < ands && tries < 50*ands; tries++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		c := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		lits = append(lits, b.And(a, c))
	}
	for i := 0; i < pos; i++ {
		b.AddPO(lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1))
	}
	return b.Build()
}

// TestTransformsPreserveFunction is the property-based safety net for every
// optimization pass: on random AIGs each transform must preserve the exact
// function — verified exhaustively while the input count permits, and by
// wide random simulation as well. A failure here means a transform
// miscompiles, most likely via the simulation engine that screens its
// candidate merges.
func TestTransformsPreserveFunction(t *testing.T) {
	passes := []struct {
		name string
		f    func(*aig.AIG, *rand.Rand) *aig.AIG
	}{
		{"rewrite", Rewrite},
		{"rewrite-z", RewriteZ},
		{"resub", Resub},
		{"resub-z", ResubZ},
		{"refactor", Refactor},
		{"balance", Balance},
		{"fraig", MergeEquiv},
		{"expand", Expand},
	}
	rng := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 8; trial++ {
		pis := 4 + rng.Intn(9) // 4..12: exhaustive check stays cheap
		ands := 60 + rng.Intn(240)
		g := randAIG(rng, pis, ands, 3+rng.Intn(4))
		for _, p := range passes {
			prng := rand.New(rand.NewSource(int64(trial)*1000 + 7))
			opt := p.f(g, prng)
			if !aig.EquivalentExhaustive(g, opt) {
				t.Fatalf("trial %d: %s miscompiled (pis=%d ands=%d→%d)",
					trial, p.name, pis, g.NumAnds(), opt.NumAnds())
			}
			if !aig.EquivalentRandom(g, opt, 16, int64(trial)+1) {
				t.Fatalf("trial %d: %s failed random equivalence", trial, p.name)
			}
		}
	}
}

// TestRecipesPreserveFunction chains whole recipes (the shapes the annealer
// explores) and checks end-to-end equivalence through the engine.
func TestRecipesPreserveFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 3; trial++ {
		g := randAIG(rng, 6+rng.Intn(5), 80+rng.Intn(160), 4)
		for _, r := range Recipes() {
			prng := rand.New(rand.NewSource(int64(trial) + 13))
			opt := r.Apply(g, prng)
			if !aig.EquivalentExhaustive(g, opt) {
				t.Fatalf("trial %d: recipe %s miscompiled", trial, r)
			}
		}
	}
}
