package transform

import (
	"fmt"
	"math/rand"
	"strings"

	"aigtimer/internal/aig"
)

// Recipe is a named sequence of basic transforms, the unit move of the
// paper's optimization flows: "an industry flow that we are familiar with
// uses 103 combinations of the basic transformations available in ABC,
// from which one combination is selected in each iteration and applied to
// the AIG."
type Recipe struct {
	Name  string
	Steps []string // catalog names
}

// Apply runs the recipe's steps in order.
func (r Recipe) Apply(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	for _, s := range r.Steps {
		fn, ok := Named(s)
		if !ok {
			panic(fmt.Sprintf("transform: recipe %s references unknown step %q", r.Name, s))
		}
		g = fn(g, rng)
	}
	return g
}

// ApplyTracked runs the recipe like Apply and additionally emits the
// structural delta of the move: the result is rebased against g
// (aig.Rebase), so its AND nodes split into a prefix shared with g and
// a dirty suffix — the cone the recipe actually touched plus its
// transitive fanout — and carries (g, delta) as provenance. Incremental
// evaluation oracles key off that record to re-map and re-time only the
// dirty cone; callers that accept the move should eventually
// ClearProvenance to unpin g.
func (r Recipe) ApplyTracked(g *aig.AIG, rng *rand.Rand) (*aig.AIG, *aig.Delta) {
	return aig.Rebase(g, r.Apply(g, rng))
}

// String renders the recipe as "name: step; step; ...".
func (r Recipe) String() string {
	return r.Name + ": " + strings.Join(r.Steps, "; ")
}

// NumRecipes is the size of the recipe catalog, matching the paper's 103
// industry combinations.
const NumRecipes = 103

// Recipes returns the catalog of 103 transformation combinations. The
// first entries are the classic hand-written scripts (the analogues of
// ABC's compress/compress2/resyn families); the remainder are generated
// deterministically by recombining the basic transforms, mirroring how the
// industry flow multiplies a small basis into a large move set.
func Recipes() []Recipe {
	base := []Recipe{
		{"balance", []string{"b"}},
		{"rewrite", []string{"rw"}},
		{"rewrite-z", []string{"rwz"}},
		{"refactor", []string{"rf"}},
		{"refactor-z", []string{"rfz"}},
		{"resub", []string{"rs"}},
		{"fraig", []string{"fr"}},
		{"expand", []string{"ex"}},
		{"shake", []string{"br"}},
		{"compress", []string{"b", "rw", "rwz", "b", "rwz", "b"}},
		{"compress2rs", []string{"b", "rs", "rw", "rs", "rf", "rs", "b", "rs", "rwz", "b"}},
		{"compress2", []string{"b", "rw", "rf", "b", "rw", "rwz", "b", "rfz", "rwz", "b"}},
		{"resyn", []string{"b", "rw", "rwz", "b", "rwz", "b"}},
		{"resyn2", []string{"b", "rw", "rf", "b", "rw", "rwz", "b", "rfz", "rwz", "b"}},
		{"resyn2a", []string{"b", "rw", "b", "rw", "rwz", "b", "rwz", "b"}},
		{"resyn3", []string{"b", "rf", "rfz", "b", "rfz", "b"}},
		{"drill", []string{"fr", "b", "rw", "rf", "b"}},
		{"churn", []string{"ex", "b", "rw", "b"}},
		{"churn2", []string{"br", "rwz", "b", "rfz", "b"}},
		{"deep", []string{"ex", "rf", "b", "rw", "rwz", "b"}},
	}
	atoms := []string{"b", "br", "rw", "rwz", "rf", "rfz", "rs", "rsz", "ex", "fr"}
	rng := rand.New(rand.NewSource(20250101)) // fixed: catalog is stable
	out := append([]Recipe(nil), base...)
	for i := len(base); i < NumRecipes; i++ {
		n := 3 + rng.Intn(6)
		steps := make([]string, n)
		for j := range steps {
			steps[j] = atoms[rng.Intn(len(atoms))]
		}
		// Always end on a compaction-style step so generated recipes do
		// not systematically bloat.
		if steps[n-1] == "ex" || steps[n-1] == "br" {
			steps[n-1] = "b"
		}
		out = append(out, Recipe{Name: fmt.Sprintf("mix%02d", i-len(base)), Steps: steps})
	}
	return out
}
