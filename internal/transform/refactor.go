package transform

import (
	"math/rand"

	"aigtimer/internal/aig"
	"aigtimer/internal/truth"
)

// refactorMaxLeaves bounds the reconvergence-driven cut used by Refactor.
// Eight leaves keeps the cone truth table at 4 words.
const refactorMaxLeaves = 8

// Refactor resynthesizes large reconvergence-driven cones (up to 10
// leaves) through ISOP factoring, accepting strict node-count reductions.
// It is the analogue of ABC's "refactor" and reduces structures that
// 4-cut rewriting cannot see.
func Refactor(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	return refactorImpl(g, rng, 1)
}

// RefactorZ is Refactor accepting zero-cost replacements (ABC's
// "refactor -z").
func RefactorZ(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	return refactorImpl(g, rng, 0)
}

func refactorImpl(g *aig.AIG, rng *rand.Rand, minGain int) *aig.AIG {
	ms := getMoveScratch()
	defer putMoveScratch(ms)
	fo := g.FanoutCounts()
	r := newRebuilder(g)
	sav := newSavings(g)
	mffcHint := mffcLowerBound(g, fo)
	isRoot := refactorRoots(g, fo)
	g.TopoForEachAnd(func(n int32, f0, f1 aig.Lit) {
		// Prefilter: resynthesis is only attempted at cone boundaries
		// (shared nodes and PO drivers — interior fanout-free nodes are
		// covered by their root's cone) whose fanout-free closure is big
		// enough for a gain to be possible. This skips the expensive cone
		// evaluation on the vast majority of nodes.
		if !isRoot[n] || int(mffcHint[n]) < 2-minGain {
			r.copyNode(n, f0, f1)
			return
		}
		leaves := reconvCut(g, n, refactorMaxLeaves, fo)
		if len(leaves) < 3 || len(leaves) > refactorMaxLeaves {
			r.copyNode(n, f0, f1)
			return
		}
		tt, ok := coneFunction(g, n, leaves, &ms.cone)
		if !ok {
			r.copyNode(n, f0, f1)
			return
		}
		saved := sav.compute(n, leaves, fo)
		prog := coneProg(tt)
		if saved-prog.cost() < minGain {
			r.copyNode(n, f0, f1)
			return
		}
		ins := make([]aig.Lit, len(leaves))
		for i, leaf := range leaves {
			ins[i] = r.m[leaf]
		}
		r.m[n] = prog.replay(r.nb, ins)
	})
	return r.finish()
}

// mffcLowerBound computes a fast per-node lower bound on the MFFC size:
// 1 + the bound of every fanout-1 AND fanin (the fanout-free chain
// closure). Nodes whose bound is already large are the profitable
// refactoring roots; the prefilter trades a few missed reconvergent
// opportunities for skipping the expensive cone evaluation on most nodes.
func mffcLowerBound(g *aig.AIG, fanouts []int32) []int32 {
	lb := make([]int32, g.NumNodes())
	g.TopoForEachAnd(func(n int32, f0, f1 aig.Lit) {
		v := int32(1)
		for _, f := range [2]aig.Lit{f0, f1} {
			fn := f.Node()
			if g.IsAnd(fn) && fanouts[fn] == 1 {
				v += lb[fn]
			}
		}
		lb[n] = v
	})
	return lb
}

// refactorRoots marks cone boundaries: nodes with shared fanout or
// driving a primary output.
func refactorRoots(g *aig.AIG, fanouts []int32) []bool {
	isRoot := make([]bool, g.NumNodes())
	for n := g.FirstAnd(); n < int32(g.NumNodes()); n++ {
		if fanouts[n] != 1 {
			isRoot[n] = true
		}
	}
	for _, po := range g.POs() {
		isRoot[po.Node()] = true
	}
	return isRoot
}

// reconvCut grows a cut from n's fanins, greedily expanding the leaf whose
// replacement by its own fanins increases the leaf count least (preferring
// reconvergence). Expansion stops at the leaf budget.
func reconvCut(g *aig.AIG, n int32, maxLeaves int, fanouts []int32) []int32 {
	f0, f1 := g.Fanins(n)
	leaves := make([]int32, 0, maxLeaves+1)
	contains := func(x int32) bool {
		for _, l := range leaves {
			if l == x {
				return true
			}
		}
		return false
	}
	add := func(x int32) {
		if !contains(x) {
			leaves = append(leaves, x)
		}
	}
	add(f0.Node())
	add(f1.Node())
	// Bound the internal cone so per-node refactoring stays cheap.
	for expansions := 0; expansions < 20; expansions++ {
		best := -1
		bestDelta := 2
		for i, l := range leaves {
			if !g.IsAnd(l) {
				continue
			}
			lf0, lf1 := g.Fanins(l)
			delta := -1
			if !contains(lf0.Node()) {
				delta++
			}
			if !contains(lf1.Node()) && lf0.Node() != lf1.Node() {
				delta++
			}
			if delta < bestDelta {
				bestDelta = delta
				best = i
			}
		}
		if best < 0 || len(leaves)+bestDelta > maxLeaves {
			break
		}
		l := leaves[best]
		lf0, lf1 := g.Fanins(l)
		leaves[best] = leaves[len(leaves)-1]
		leaves = leaves[:len(leaves)-1]
		add(lf0.Node())
		add(lf1.Node())
	}
	sortAsc(leaves)
	return leaves
}

func sortAsc(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// coneScratch holds the truth-table storage for one cone evaluation:
// the visited node ids paired with word slots carved from a flat slab.
// The cone interior is tiny (reconvCut absorbs at most 20 nodes), so
// the memo is a linear id scan; the slab makes repeated evaluations
// allocation-free once warm.
type coneScratch struct {
	ids  []int32
	slab []uint64
}

func (cs *coneScratch) reset() {
	cs.ids = cs.ids[:0]
	cs.slab = cs.slab[:0]
}

// add registers node x and reserves its wpk-word slot, returning the
// memo index. Growing the slab may move it, so slot slices must be
// derived after the add that needs them.
func (cs *coneScratch) add(x int32, wpk int) int {
	cs.ids = append(cs.ids, x)
	n := len(cs.slab)
	if cap(cs.slab) >= n+wpk {
		cs.slab = cs.slab[:n+wpk]
	} else {
		cs.slab = append(cs.slab, make([]uint64, wpk)...)
	}
	return len(cs.ids) - 1
}

func (cs *coneScratch) lookup(x int32) int {
	for i, id := range cs.ids {
		if id == x {
			return i
		}
	}
	return -1
}

func (cs *coneScratch) slot(i, wpk int) []uint64 {
	return cs.slab[i*wpk : (i+1)*wpk]
}

// coneFunction evaluates node n's function over the given cut leaves by
// truth-table propagation through the cone, with all storage coming from
// cs; the returned table aliases cs's slab and is valid only until the
// scratch's next use. It fails (ok=false) when the cone reaches a
// non-leaf PI or the constant node, which indicates the cut is not a
// complete boundary for n. The word-level AND/complement steps mirror
// truth.TT.And/Not exactly (plain full-word ops on replicated tables),
// so the result is bit-identical to the allocating evaluation.
func coneFunction(g *aig.AIG, n int32, leaves []int32, cs *coneScratch) (truth.TT, bool) {
	k := len(leaves)
	wpk := truth.Words(k)
	cs.reset()
	for i, l := range leaves {
		truth.VarInto(cs.slot(cs.add(l, wpk), wpk), k, i)
	}
	e := coneEval{g: g, cs: cs, wpk: wpk}
	i, ok := e.eval(n)
	if !ok {
		return truth.TT{}, false
	}
	return truth.TT{N: k, W: cs.slot(i, wpk)}, true
}

// coneEval is the recursive evaluator behind coneFunction; a named
// method receiver keeps the recursion off the heap, where a recursive
// closure value would escape per call.
type coneEval struct {
	g   *aig.AIG
	cs  *coneScratch
	wpk int
}

func (e *coneEval) eval(x int32) (int, bool) {
	if i := e.cs.lookup(x); i >= 0 {
		return i, true
	}
	if !e.g.IsAnd(x) {
		return 0, false
	}
	f0, f1 := e.g.Fanins(x)
	i0, ok := e.eval(f0.Node())
	if !ok {
		return 0, false
	}
	i1, ok := e.eval(f1.Node())
	if !ok {
		return 0, false
	}
	i := e.cs.add(x, e.wpk)
	a := e.cs.slot(i0, e.wpk)
	b := e.cs.slot(i1, e.wpk)
	out := e.cs.slot(i, e.wpk)
	var m0, m1 uint64
	if f0.IsCompl() {
		m0 = ^uint64(0)
	}
	if f1.IsCompl() {
		m1 = ^uint64(0)
	}
	for w := range out {
		out[w] = (a[w] ^ m0) & (b[w] ^ m1)
	}
	return i, true
}
