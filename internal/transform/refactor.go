package transform

import (
	"math/rand"
	"sync"

	"aigtimer/internal/aig"
	"aigtimer/internal/truth"
)

// refactorMaxLeaves bounds the reconvergence-driven cut used by Refactor.
// Eight leaves keeps the cone truth table at 4 words.
const refactorMaxLeaves = 8

// Refactor resynthesizes large reconvergence-driven cones (up to 10
// leaves) through ISOP factoring, accepting strict node-count reductions.
// It is the analogue of ABC's "refactor" and reduces structures that
// 4-cut rewriting cannot see.
func Refactor(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	return refactorImpl(g, rng, 1)
}

// RefactorZ is Refactor accepting zero-cost replacements (ABC's
// "refactor -z").
func RefactorZ(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	return refactorImpl(g, rng, 0)
}

func refactorImpl(g *aig.AIG, rng *rand.Rand, minGain int) *aig.AIG {
	fo := g.FanoutCounts()
	r := newRebuilder(g)
	sav := newSavings(g)
	mffcHint := mffcLowerBound(g, fo)
	isRoot := refactorRoots(g, fo)
	g.TopoForEachAnd(func(n int32, f0, f1 aig.Lit) {
		// Prefilter: resynthesis is only attempted at cone boundaries
		// (shared nodes and PO drivers — interior fanout-free nodes are
		// covered by their root's cone) whose fanout-free closure is big
		// enough for a gain to be possible. This skips the expensive cone
		// evaluation on the vast majority of nodes.
		if !isRoot[n] || int(mffcHint[n]) < 2-minGain {
			r.copyNode(n, f0, f1)
			return
		}
		leaves := reconvCut(g, n, refactorMaxLeaves, fo)
		if len(leaves) < 3 || len(leaves) > refactorMaxLeaves {
			r.copyNode(n, f0, f1)
			return
		}
		tt, ok := coneFunction(g, n, leaves)
		if !ok {
			r.copyNode(n, f0, f1)
			return
		}
		saved := sav.compute(n, leaves, fo)
		cost := refactorCost(tt)
		if saved-cost < minGain {
			r.copyNode(n, f0, f1)
			return
		}
		ins := make([]aig.Lit, len(leaves))
		for i, leaf := range leaves {
			ins[i] = r.m[leaf]
		}
		r.m[n] = truth.SynthesizeTT(r.nb, ins, tt)
	})
	return r.finish()
}

// refactorCostCache memoizes standalone synthesis costs of cone functions
// (up to 8 variables = 4 words) across all refactor invocations.
var refactorCostCache sync.Map // [5]uint64{words..., k} -> int

// refactorCost returns the AND count of tt's factored form in isolation.
func refactorCost(tt truth.TT) int {
	var key [5]uint64
	copy(key[:4], tt.W)
	key[4] = uint64(tt.N)
	if v, ok := refactorCostCache.Load(key); ok {
		return v.(int)
	}
	sb := aig.NewBuilder(tt.N)
	sins := make([]aig.Lit, tt.N)
	for i := range sins {
		sins[i] = sb.PI(i)
	}
	truth.SynthesizeTT(sb, sins, tt)
	c := sb.NumAnds()
	refactorCostCache.Store(key, c)
	return c
}

// mffcLowerBound computes a fast per-node lower bound on the MFFC size:
// 1 + the bound of every fanout-1 AND fanin (the fanout-free chain
// closure). Nodes whose bound is already large are the profitable
// refactoring roots; the prefilter trades a few missed reconvergent
// opportunities for skipping the expensive cone evaluation on most nodes.
func mffcLowerBound(g *aig.AIG, fanouts []int32) []int32 {
	lb := make([]int32, g.NumNodes())
	g.TopoForEachAnd(func(n int32, f0, f1 aig.Lit) {
		v := int32(1)
		for _, f := range [2]aig.Lit{f0, f1} {
			fn := f.Node()
			if g.IsAnd(fn) && fanouts[fn] == 1 {
				v += lb[fn]
			}
		}
		lb[n] = v
	})
	return lb
}

// refactorRoots marks cone boundaries: nodes with shared fanout or
// driving a primary output.
func refactorRoots(g *aig.AIG, fanouts []int32) []bool {
	isRoot := make([]bool, g.NumNodes())
	for n := g.FirstAnd(); n < int32(g.NumNodes()); n++ {
		if fanouts[n] != 1 {
			isRoot[n] = true
		}
	}
	for _, po := range g.POs() {
		isRoot[po.Node()] = true
	}
	return isRoot
}

// reconvCut grows a cut from n's fanins, greedily expanding the leaf whose
// replacement by its own fanins increases the leaf count least (preferring
// reconvergence). Expansion stops at the leaf budget.
func reconvCut(g *aig.AIG, n int32, maxLeaves int, fanouts []int32) []int32 {
	f0, f1 := g.Fanins(n)
	leaves := make([]int32, 0, maxLeaves+1)
	contains := func(x int32) bool {
		for _, l := range leaves {
			if l == x {
				return true
			}
		}
		return false
	}
	add := func(x int32) {
		if !contains(x) {
			leaves = append(leaves, x)
		}
	}
	add(f0.Node())
	add(f1.Node())
	// Bound the internal cone so per-node refactoring stays cheap.
	for expansions := 0; expansions < 20; expansions++ {
		best := -1
		bestDelta := 2
		for i, l := range leaves {
			if !g.IsAnd(l) {
				continue
			}
			lf0, lf1 := g.Fanins(l)
			delta := -1
			if !contains(lf0.Node()) {
				delta++
			}
			if !contains(lf1.Node()) && lf0.Node() != lf1.Node() {
				delta++
			}
			if delta < bestDelta {
				bestDelta = delta
				best = i
			}
		}
		if best < 0 || len(leaves)+bestDelta > maxLeaves {
			break
		}
		l := leaves[best]
		lf0, lf1 := g.Fanins(l)
		leaves[best] = leaves[len(leaves)-1]
		leaves = leaves[:len(leaves)-1]
		add(lf0.Node())
		add(lf1.Node())
	}
	sortAsc(leaves)
	return leaves
}

func sortAsc(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// coneFunction evaluates node n's function over the given cut leaves by
// truth-table propagation through the cone. It fails (ok=false) when the
// cone reaches a non-leaf PI or the constant node, which indicates the cut
// is not a complete boundary for n.
func coneFunction(g *aig.AIG, n int32, leaves []int32) (truth.TT, bool) {
	k := len(leaves)
	memo := make(map[int32]truth.TT, 2*k)
	for i, l := range leaves {
		memo[l] = truth.Var(k, i)
	}
	var eval func(x int32) (truth.TT, bool)
	eval = func(x int32) (truth.TT, bool) {
		if t, ok := memo[x]; ok {
			return t, true
		}
		if !g.IsAnd(x) {
			return truth.TT{}, false
		}
		f0, f1 := g.Fanins(x)
		t0, ok := eval(f0.Node())
		if !ok {
			return truth.TT{}, false
		}
		t1, ok := eval(f1.Node())
		if !ok {
			return truth.TT{}, false
		}
		if f0.IsCompl() {
			t0 = t0.Not()
		}
		if f1.IsCompl() {
			t1 = t1.Not()
		}
		t := t0.And(t1)
		memo[x] = t
		return t, true
	}
	return eval(n)
}
