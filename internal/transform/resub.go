package transform

import (
	"math/rand"

	"aigtimer/internal/aig"
)

// Resubstitution (ABC's "resub"): try to re-express a node as a simple
// function of up to two *other* existing nodes ("divisors"), freeing the
// node's maximum fanout-free cone. Candidate divisors are screened with
// simulation signatures and every substitution is proven exactly (see
// exact.go), so the transform is exact.
//
// Supported substitution shapes (with optional complementations):
//
//	0-resub:  n = ±d
//	1-resub:  n = ±(±d0 · ±d1)
//
// These are the profitable low-order cases; higher orders trade little
// extra gain for much more search.

// simWords is the signature width used for divisor screening.
const resubSimWords = 4

// Resub performs resubstitution with strict node-count gain.
func Resub(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	return resubImpl(g, rng, 1)
}

// ResubZ performs resubstitution accepting zero-gain substitutions.
func ResubZ(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	return resubImpl(g, rng, 0)
}

func resubImpl(g *aig.AIG, rng *rand.Rand, minGain int) *aig.AIG {
	fo := g.FanoutCounts()
	lv := g.Levels()

	// Simulation signatures for screening.
	simRng := rand.New(rand.NewSource(rng.Int63()))
	ms := getMoveScratch()
	defer putMoveScratch(ms)
	var res *aig.SimResult
	sim := ms.simulator(g)
	exhaustive := g.NumPIs() <= 12
	if exhaustive {
		res = sim.SimulateWords(exhaustivePatterns(g.NumPIs()), aig.ExhaustiveWords(g.NumPIs()))
	} else {
		res = sim.SimulateWords(aig.RandomPatterns(g.NumPIs(), resubSimWords, simRng), resubSimWords)
	}
	var ver *verifier
	if !exhaustive {
		ver = newVerifier(g)
	}
	defer ver.release()

	// Index nodes by signature for 0-resub lookups.
	type sigClass struct{ rep int32 }
	bySig := map[uint64]sigClass{}
	sigOf := func(n int32) (uint64, bool) {
		v := res.Values[n]
		phase := v[0]&1 == 1
		const prime = 1099511628211
		h := uint64(14695981039346656037)
		for _, w := range v {
			if phase {
				w = ^w
			}
			h ^= w
			h *= prime
		}
		return h, phase
	}

	mffc := mffcLowerBound(g, fo)
	r := newRebuilder(g)
	g.TopoForEachAnd(func(n int32, f0, f1 aig.Lit) {
		// 0-resub: an equivalent (possibly complemented) earlier node.
		key, phase := sigOf(n)
		if cl, ok := bySig[key]; ok && cl.rep != n {
			_, repPhase := sigOf(cl.rep)
			if verifyEqual(res, n, cl.rep, phase != repPhase) {
				merge := exhaustive
				if !merge {
					eq, verified := ver.equal(n, cl.rep, phase != repPhase)
					merge = verified && eq
				}
				if merge {
					r.m[n] = r.m[cl.rep].NotIf(phase != repPhase)
					return
				}
			}
		} else if !ok {
			bySig[key] = sigClass{rep: n}
		}
		// 1-resub: n = ±(±d0 · ±d1) for divisors below n's level with
		// smaller structural cost than the freed MFFC. Nodes whose own
		// support already exceeds the verification bound cannot yield a
		// provable substitution, so they are skipped outright.
		if int(mffc[n]) >= 1+minGain && (ver == nil || ver.verifiable(n)) {
			if lit, ok := tryOneResub(g, res, n, lv, rng, r, ver); ok {
				r.m[n] = lit
				return
			}
		}
		r.copyNode(n, f0, f1)
	})
	return r.finish()
}

// verifyEqual confirms word-exact equality (up to complement) of two
// nodes' simulated functions.
func verifyEqual(res *aig.SimResult, a, b int32, compl bool) bool {
	va, vb := res.Values[a], res.Values[b]
	for i := range va {
		w := vb[i]
		if compl {
			w = ^w
		}
		if va[i] != w {
			return false
		}
	}
	return true
}

// tryOneResub searches a sampled set of divisor pairs for n = ±(±d0·±d1).
// The simulation is exhaustive for designs of up to 12 inputs, making the
// match a proof; above that the match is a screen and ver provides the
// exact support-bounded cone check.
func tryOneResub(g *aig.AIG, res *aig.SimResult, n int32, lv []int32, rng *rand.Rand, r *rebuilder, ver *verifier) (aig.Lit, bool) {
	// Divisor pool: the node's structural neighborhood — fanins and their
	// siblings — plus random earlier nodes.
	f0, f1 := g.Fanins(n)
	pool := []int32{f0.Node(), f1.Node()}
	for k := 0; k < 8; k++ {
		d := int32(1 + rng.Intn(int(n)))
		if d != n && lv[d] < lv[n] {
			pool = append(pool, d)
		}
	}
	vn := res.Values[n]
	words := len(vn)
	tryPair := func(d0, d1 int32) (aig.Lit, bool) {
		v0, v1 := res.Values[d0], res.Values[d1]
		// Try the 8 complement combinations with outer phase both ways.
		for c := 0; c < 8; c++ {
			i0 := c&1 == 1
			i1 := c&2 == 2
			oc := c&4 == 4
			ok := true
			for w := 0; w < words; w++ {
				a, b := v0[w], v1[w]
				if i0 {
					a = ^a
				}
				if i1 {
					b = ^b
				}
				x := a & b
				if oc {
					x = ^x
				}
				if x != vn[w] {
					ok = false
					break
				}
			}
			if ok {
				// The simulation match is a proof only in exhaustive mode;
				// otherwise require the exact cone check.
				if ver != nil {
					eq, verified := ver.andEquals(n, d0, d1, i0, i1, oc)
					if !verified || !eq {
						continue
					}
				}
				l := r.nb.And(r.m[d0].NotIf(i0), r.m[d1].NotIf(i1))
				return l.NotIf(oc), true
			}
		}
		return 0, false
	}
	for i := 0; i < len(pool); i++ {
		for j := i + 1; j < len(pool); j++ {
			d0, d1 := pool[i], pool[j]
			if d0 == n || d1 == n {
				continue
			}
			// Skip pairs whose substitution could never be proven.
			if ver != nil && !ver.verifiable(n, d0, d1) {
				continue
			}
			// Both divisors must not be in n's fanout cone (they precede
			// n topologically, so this is guaranteed), and at least one
			// must differ from n's own fanins or carry a different
			// complement shape, otherwise nothing is gained; the gain
			// accounting is implicit in the rebuild (strash reuses the
			// existing AND when the pair is n's own fanins).
			if l, ok := tryPair(d0, d1); ok {
				return l, true
			}
		}
	}
	return 0, false
}
