package transform

import (
	"math/rand"
	"testing"

	"aigtimer/internal/aig"
)

func TestResubMergesDuplicateStructure(t *testing.T) {
	// Two disjoint computations of the same function; 0-resub must merge
	// them.
	b := aig.NewBuilder(3)
	x, y, z := b.PI(0), b.PI(1), b.PI(2)
	f1 := b.And(b.And(x, y), z)
	f2 := b.And(x, b.And(y, z)) // same function, different association
	b.AddPO(f1)
	b.AddPO(f2)
	g := b.Build()
	rng := rand.New(rand.NewSource(1))
	h := Resub(g, rng)
	if !aig.EquivalentExhaustive(g, h) {
		t.Fatal("resub changed function")
	}
	if h.NumAnds() >= g.NumAnds() {
		t.Errorf("resub did not merge: %d -> %d", g.NumAnds(), h.NumAnds())
	}
}

func TestResubExactOnLargerDesigns(t *testing.T) {
	// Above 12 PIs the screen is random simulation and every substitution
	// must be proven; equivalence must still hold exactly (checked here
	// with full exhaustive comparison at 14 PIs).
	rng := rand.New(rand.NewSource(2))
	g := randomAIG(rng, 14, 220, 5)
	for i := 0; i < 3; i++ {
		h := Resub(g, rng)
		if !aig.EquivalentExhaustive(g, h) {
			t.Fatal("resub broke function on 14-PI design")
		}
		hz := ResubZ(g, rng)
		if !aig.EquivalentExhaustive(g, hz) {
			t.Fatal("resub -z broke function on 14-PI design")
		}
	}
}

func TestVerifierEqual(t *testing.T) {
	b := aig.NewBuilder(4)
	x, y := b.PI(0), b.PI(1)
	// Two equivalent forms of XOR.
	xor1 := b.Or(b.And(x, y.Not()), b.And(x.Not(), y))
	xor2 := b.And(b.Or(x, y), b.And(x, y).Not())
	xnor := b.Xnor(x, y)
	b.AddPO(xor1)
	b.AddPO(xor2)
	b.AddPO(xnor)
	g := b.Build()
	v := newVerifier(g)

	// The verifier compares NODE functions; literals may carry a
	// complement bit (Or returns a complemented NAND node), so the
	// expected phase difference is derived from the literals.
	ph12 := xor1.IsCompl() != xor2.IsCompl()
	eq, verified := v.equal(xor1.Node(), xor2.Node(), ph12)
	if !verified || !eq {
		t.Fatalf("equal XORs not proven: eq=%v verified=%v", eq, verified)
	}
	// XOR vs XNOR are complements (as literals).
	ph1n := xor1.IsCompl() != xnor.IsCompl()
	eq, verified = v.equal(xor1.Node(), xnor.Node(), !ph1n)
	if !verified || !eq {
		t.Fatalf("complement equivalence not proven")
	}
	eq, verified = v.equal(xor1.Node(), xnor.Node(), ph1n)
	if !verified || eq {
		t.Fatalf("XOR == XNOR wrongly proven")
	}
}

func TestVerifierAndEquals(t *testing.T) {
	b := aig.NewBuilder(3)
	x, y, z := b.PI(0), b.PI(1), b.PI(2)
	d0 := b.And(x, y)
	d1 := b.And(y, z)
	n := b.And(d0, z) // x·y·z == (x·y)·(y·z)
	b.AddPO(n)
	b.AddPO(d1)
	g := b.Build()
	v := newVerifier(g)
	eq, verified := v.andEquals(n.Node(), d0.Node(), d1.Node(), false, false, false)
	if !verified || !eq {
		t.Fatalf("x·y·z == (x·y)(y·z) not proven: eq=%v verified=%v", eq, verified)
	}
	eq, verified = v.andEquals(n.Node(), d0.Node(), d1.Node(), true, false, false)
	if !verified || eq {
		t.Fatalf("wrong complement combination proven")
	}
}

func TestVerifierSupportBound(t *testing.T) {
	// Two nodes whose union support exceeds the bound must be reported as
	// unverifiable, not unequal.
	b := aig.NewBuilder(20)
	a := b.PI(0)
	for i := 1; i < 10; i++ {
		a = b.And(a, b.PI(i))
	}
	c := b.PI(10)
	for i := 11; i < 20; i++ {
		c = b.And(c, b.PI(i))
	}
	b.AddPO(a)
	b.AddPO(c)
	g := b.Build()
	v := newVerifier(g)
	_, verified := v.equal(a.Node(), c.Node(), false)
	if verified {
		t.Fatalf("20-input union support verified despite bound %d", exactVerifyMaxSupport)
	}
}

func TestPISupports(t *testing.T) {
	b := aig.NewBuilder(3)
	n1 := b.And(b.PI(0), b.PI(1))
	n2 := b.And(n1, b.PI(2))
	b.AddPO(n2)
	g := b.Build()
	var s verScratch
	piSupports(g, &s)
	sup := s.sup
	if sup[n1.Node()] != 0b011 || sup[n2.Node()] != 0b111 {
		t.Fatalf("supports wrong: %b %b", sup[n1.Node()], sup[n2.Node()])
	}
}
