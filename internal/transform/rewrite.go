package transform

import (
	"math/rand"

	"aigtimer/internal/aig"
	"aigtimer/internal/cut"
	"aigtimer/internal/truth"
)

// Rewrite performs 4-cut rewriting: every AND node's best cut function is
// resynthesized through ISOP factoring and the replacement is kept when it
// strictly reduces the node count (accounting for the maximum fanout-free
// cone the replacement frees). This is the analogue of ABC's "rewrite".
func Rewrite(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	return rewriteImpl(g, rng, 1)
}

// RewriteZ is Rewrite with zero-cost replacements allowed (ABC's
// "rewrite -z"): structural changes that keep the node count are also
// accepted, which perturbs structure and unlocks later reductions.
func RewriteZ(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	return rewriteImpl(g, rng, 0)
}

func rewriteImpl(g *aig.AIG, rng *rand.Rand, minGain int) *aig.AIG {
	ms := getMoveScratch()
	defer putMoveScratch(ms)
	cuts := ms.enumerate(g, cut.Params{K: 4, MaxCuts: 8})
	fo := g.FanoutCounts()
	sav := newSavings(g)
	r := newRebuilder(g)
	g.TopoForEachAnd(func(n int32, f0, f1 aig.Lit) {
		type cand struct {
			c    cut.Cut
			gain int
		}
		var best []cand // all candidates tied at the best gain
		bestGain := minGain - 1
		for _, c := range cuts[n] {
			if c.IsTrivial(n) || len(c.Leaves) < 2 {
				continue
			}
			saved := sav.compute(n, c.Leaves, fo)
			cost := synthCost(c.Table, len(c.Leaves))
			gain := saved - cost
			if gain > bestGain {
				bestGain = gain
				best = best[:0]
			}
			if gain == bestGain {
				best = append(best, cand{c, gain})
			}
		}
		if bestGain < minGain || len(best) == 0 {
			r.copyNode(n, f0, f1)
			return
		}
		chosen := best[rng.Intn(len(best))]
		ins := make([]aig.Lit, len(chosen.c.Leaves))
		for i, leaf := range chosen.c.Leaves {
			ins[i] = r.m[leaf]
		}
		r.m[n] = cutProg(chosen.c.Table, len(chosen.c.Leaves)).replay(r.nb, ins)
	})
	return r.finish()
}

// Expand is a deliberate de-optimization used as a diversity move: a
// random subset of nodes is resynthesized from a random non-trivial cut
// into flat two-level (SOP) form without factoring or sharing. Function is
// preserved while node count typically grows, letting the annealer escape
// the locally-optimal structures that greedy transforms converge to. This
// plays the role of the node-increasing members of the paper's 103
// industry transformation combinations.
func Expand(g *aig.AIG, rng *rand.Rand) *aig.AIG {
	const prob = 0.2
	ms := getMoveScratch()
	defer putMoveScratch(ms)
	cuts := ms.enumerate(g, cut.Params{K: 4, MaxCuts: 8})
	r := newRebuilder(g)
	g.TopoForEachAnd(func(n int32, f0, f1 aig.Lit) {
		if rng.Float64() >= prob {
			r.copyNode(n, f0, f1)
			return
		}
		// Pick a random non-trivial cut.
		var options []cut.Cut
		for _, c := range cuts[n] {
			if !c.IsTrivial(n) && len(c.Leaves) >= 2 {
				options = append(options, c)
			}
		}
		if len(options) == 0 {
			r.copyNode(n, f0, f1)
			return
		}
		c := options[rng.Intn(len(options))]
		ins := make([]aig.Lit, len(c.Leaves))
		for i, leaf := range c.Leaves {
			ins[i] = r.m[leaf]
		}
		tt := truth.FromUint16K(c.Table, len(c.Leaves))
		r.m[n] = flatSOP(r.nb, ins, tt)
	})
	return r.finish()
}

// flatSOP emits an unfactored two-level implementation: one AND chain per
// cube, OR-chained in order.
func flatSOP(b *aig.Builder, inputs []aig.Lit, t truth.TT) aig.Lit {
	if t.IsZero() {
		return aig.ConstFalse
	}
	if t.IsOne() {
		return aig.ConstTrue
	}
	cover := truth.ISOP(t, t)
	out := aig.ConstFalse
	for _, cube := range cover {
		term := aig.ConstTrue
		for v := 0; v < t.N; v++ {
			if !cube.Has(v) {
				continue
			}
			term = b.And(term, inputs[v].NotIf(!cube.Positive(v)))
		}
		out = b.Or(out, term)
	}
	return out
}
