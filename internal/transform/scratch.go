package transform

import (
	"sync"

	"aigtimer/internal/aig"
	"aigtimer/internal/cut"
)

// moveScratch pools the per-move working state of the transform catalog:
// the cut-enumeration arena and scratch plus the per-node cut index used
// by rewrite/expand, a rebindable simulator for the simulation-driven
// transforms, and the cone-evaluation slab used by refactor. Transforms
// check one out per call and return it on exit, so a retained annealer
// worker reaches a high-water mark once and then drives the whole move
// catalog without re-allocating its big buffers.
type moveScratch struct {
	arena cut.Arena
	cutSc cut.Scratch
	cuts  [][]cut.Cut
	sim   *aig.Simulator
	cone  coneScratch
}

var moveScratchPool = sync.Pool{New: func() any { return new(moveScratch) }}

func getMoveScratch() *moveScratch  { return moveScratchPool.Get().(*moveScratch) }
func putMoveScratch(ms *moveScratch) { moveScratchPool.Put(ms) }

// enumerate is cut.Enumerate backed by the scratch's arena. The returned
// per-node lists alias the arena and die with the move: they are invalid
// after the scratch is returned to the pool.
func (ms *moveScratch) enumerate(g *aig.AIG, p cut.Params) [][]cut.Cut {
	n := g.NumNodes()
	if cap(ms.cuts) >= n {
		ms.cuts = ms.cuts[:n]
	} else {
		ms.cuts = make([][]cut.Cut, n)
	}
	ms.arena.Reset()
	cut.EnumerateArena(g, p, ms.cuts, &ms.arena, &ms.cutSc)
	return ms.cuts
}

// simulator returns a simulator bound to g, reusing the pooled engine's
// value storage across moves.
func (ms *moveScratch) simulator(g *aig.AIG) *aig.Simulator {
	if ms.sim == nil {
		ms.sim = aig.NewSimulator(g)
		return ms.sim
	}
	return ms.sim.Rebind(g)
}

// exhaustivePatternCache memoizes aig.ExhaustivePatterns per PI count —
// the rows are pure functions of the count and are only read by the
// simulator, so every exhaustive fraig/resub move can share one copy.
var exhaustivePatternCache sync.Map // int -> [][]uint64

// exhaustivePatterns is a cached, shared aig.ExhaustivePatterns. Callers
// must not mutate the returned rows.
func exhaustivePatterns(numPIs int) [][]uint64 {
	if v, ok := exhaustivePatternCache.Load(numPIs); ok {
		return v.([][]uint64)
	}
	p := aig.ExhaustivePatterns(numPIs)
	exhaustivePatternCache.Store(numPIs, p)
	return p
}
