package transform

import (
	"sync"
	"sync/atomic"

	"aigtimer/internal/aig"
	"aigtimer/internal/truth"
)

// Synthesis-program caching. truth.SynthesizeTT's emission sequence is a
// pure function of the truth table: the ISOP covers, the cost comparison
// (measured in standalone builders), and the factoring tree depend on
// nothing but the table, so the AND calls it issues — and therefore the
// structure it creates in any builder — are identical on every call.
// Rewrite and refactor re-derive that sequence from scratch for every
// accepted node of every move, which is where the bulk of the move
// path's allocation (ISOP cube covers, truth-table temporaries, scratch
// cost builders) came from. A synthProg captures the sequence once as
// the dedup'd AND list of a standalone synthesis and replays it through
// the target builder's structural hashing, which produces bit-identical
// results: replay performs exactly the create-or-find operations the
// direct call sequence would, in the same order.

// synthProg is one replayable synthesis: the AND nodes SynthesizeTT
// creates for the function over fresh inputs, in creation order, with
// fanins referring to the standalone graph (node 0 the constant, nodes
// 1..k the inputs, k+1.. the ops), plus the output literal.
type synthProg struct {
	k   int
	ops [][2]aig.Lit
	out aig.Lit
}

// buildSynthProg records the synthesis of tt by running it against a
// standalone builder and reading back the dedup'd AND list.
func buildSynthProg(tt truth.TT) *synthProg {
	sb := aig.NewBuilder(tt.N)
	ins := make([]aig.Lit, tt.N)
	for i := range ins {
		ins[i] = sb.PI(i)
	}
	out := truth.SynthesizeTT(sb, ins, tt)
	g := sb.Build()
	p := &synthProg{k: tt.N, out: out}
	if n := g.NumAnds(); n > 0 {
		p.ops = make([][2]aig.Lit, 0, n)
		for x := g.FirstAnd(); x < int32(g.NumNodes()); x++ {
			f0, f1 := g.Fanins(x)
			p.ops = append(p.ops, [2]aig.Lit{f0, f1})
		}
	}
	return p
}

// cost returns the standalone AND count of the synthesis — what a
// scratch-builder run of SynthesizeTT would report as NumAnds.
func (p *synthProg) cost() int { return len(p.ops) }

// replay emits the program into b over the given inputs and returns the
// output literal, bit-identical to truth.SynthesizeTT(b, ins, tt).
func (p *synthProg) replay(b *aig.Builder, ins []aig.Lit) aig.Lit {
	var buf [192]aig.Lit
	m := buf[:]
	if need := 1 + p.k + len(p.ops); need > len(m) {
		m = make([]aig.Lit, need)
	}
	m[0] = aig.ConstFalse
	copy(m[1:], ins)
	tr := func(f aig.Lit) aig.Lit { return m[f.Node()].NotIf(f.IsCompl()) }
	base := 1 + p.k
	for i, op := range p.ops {
		m[base+i] = b.And(tr(op[0]), tr(op[1]))
	}
	return tr(p.out)
}

// synthProgTab caches programs for cut functions (k ≤ 4, 16-bit padded
// tables), indexed flat by (k, table): rewriting probes it once per cut
// per node per move. Racing fills build identical programs, so a plain
// atomic pointer suffices.
var synthProgTab [5 << 16]atomic.Pointer[synthProg]

// cutProg returns the synthesis program of a ≤4-leaf cut function.
func cutProg(table uint16, k int) *synthProg {
	slot := &synthProgTab[k<<16|int(table)]
	p := slot.Load()
	if p == nil {
		p = buildSynthProg(truth.FromUint16K(table, k))
		slot.Store(p)
	}
	return p
}

// coneProgCache caches programs for reconvergence-driven cone functions
// (k ≤ 8, tables up to 4 words), keyed by the padded words and width.
var coneProgCache sync.Map // [5]uint64 -> *synthProg

// coneProg returns the synthesis program of a cone function.
func coneProg(tt truth.TT) *synthProg {
	var key [5]uint64
	copy(key[:4], tt.W)
	key[4] = uint64(tt.N)
	if v, ok := coneProgCache.Load(key); ok {
		return v.(*synthProg)
	}
	p := buildSynthProg(tt)
	coneProgCache.Store(key, p)
	return p
}
