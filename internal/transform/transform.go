package transform

import (
	"math/rand"

	"aigtimer/internal/aig"
)

// Func is a single AIG transformation.
type Func func(g *aig.AIG, rng *rand.Rand) *aig.AIG

// Transform is a named transformation.
type Transform struct {
	Name string
	Fn   Func
}

// Catalog lists the basic transforms in a stable order.
func Catalog() []Transform {
	return []Transform{
		{"b", Balance},
		{"br", BalanceRandom},
		{"rw", Rewrite},
		{"rwz", RewriteZ},
		{"rf", Refactor},
		{"rfz", RefactorZ},
		{"rs", Resub},
		{"rsz", ResubZ},
		{"ex", Expand},
		{"fr", MergeEquiv},
	}
}

// byName resolves transform names; built once.
var byName = func() map[string]Func {
	m := make(map[string]Func)
	for _, t := range Catalog() {
		m[t.Name] = t.Fn
	}
	return m
}()

// rebuilder maps an old AIG into a new builder node by node.
type rebuilder struct {
	g  *aig.AIG
	nb *aig.Builder
	m  []aig.Lit // old node index -> new literal (positive phase)
}

func newRebuilder(g *aig.AIG) *rebuilder {
	r := &rebuilder{g: g, nb: aig.NewBuilder(g.NumPIs())}
	r.m = make([]aig.Lit, g.NumNodes())
	r.m[0] = aig.ConstFalse
	for i := 1; i <= g.NumPIs(); i++ {
		r.m[i] = r.nb.PI(i - 1)
	}
	return r
}

// lit maps an old literal to the new graph.
func (r *rebuilder) lit(old aig.Lit) aig.Lit {
	return r.m[old.Node()].NotIf(old.IsCompl())
}

// copyNode gives node n its default implementation: the AND of its mapped
// fanins.
func (r *rebuilder) copyNode(n int32, f0, f1 aig.Lit) {
	r.m[n] = r.nb.And(r.lit(f0), r.lit(f1))
}

// finish maps the POs and returns the compacted result.
func (r *rebuilder) finish() *aig.AIG {
	for _, po := range r.g.POs() {
		r.nb.AddPO(r.lit(po))
	}
	return r.nb.Build().Compact()
}

// savings computes, allocation-free, the number of AND nodes that
// disappear if a node's function is reimplemented over a cut: the maximum
// fanout-free cone of the node restricted to the cut (the node itself plus
// every cone node all of whose fanout references come from saved nodes).
// State is reused across calls via epoch tagging because rewriting queries
// it for every cut of every node.
type savings struct {
	g      *aig.AIG
	epoch  int32
	leafEp []int32 // node marked as cut leaf this epoch
	coneEp []int32 // node collected into the cone this epoch
	uses   []int32 // fanin references from saved nodes (valid if usesEp)
	usesEp []int32
	stack  []int32
	cone   []int32
}

func newSavings(g *aig.AIG) *savings {
	n := g.NumNodes()
	return &savings{
		g:      g,
		leafEp: make([]int32, n),
		coneEp: make([]int32, n),
		uses:   make([]int32, n),
		usesEp: make([]int32, n),
	}
}

func (s *savings) addUse(x int32, e int32) {
	if s.usesEp[x] != e {
		s.usesEp[x] = e
		s.uses[x] = 0
	}
	s.uses[x]++
}

// compute returns the saved-node count for reimplementing n over leaves.
func (s *savings) compute(n int32, leaves []int32, fanouts []int32) int {
	g := s.g
	s.epoch++
	e := s.epoch
	for _, l := range leaves {
		s.leafEp[l] = e
	}
	// Collect the cone (ANDs strictly between leaves and n, plus n).
	s.cone = s.cone[:0]
	s.stack = append(s.stack[:0], n)
	s.coneEp[n] = e
	for len(s.stack) > 0 {
		c := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		s.cone = append(s.cone, c)
		cf0, cf1 := g.Fanins(c)
		for _, f := range [2]aig.Lit{cf0, cf1} {
			fn := f.Node()
			if s.leafEp[fn] == e || !g.IsAnd(fn) || s.coneEp[fn] == e {
				continue
			}
			s.coneEp[fn] = e
			s.stack = append(s.stack, fn)
		}
	}
	// Reverse-topological MFFC within the cone: nodes are saved when all
	// fanout references come from already-saved nodes.
	sortDesc(s.cone)
	f0, f1 := g.Fanins(n)
	s.addUse(f0.Node(), e)
	s.addUse(f1.Node(), e)
	count := 1
	for _, c := range s.cone {
		if c == n {
			continue
		}
		refs := int32(0)
		if s.usesEp[c] == e {
			refs = s.uses[c]
		}
		if refs == fanouts[c] {
			cf0, cf1 := g.Fanins(c)
			s.addUse(cf0.Node(), e)
			s.addUse(cf1.Node(), e)
			count++
		}
	}
	return count
}

func sortDesc(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] > s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// synthCost returns the standalone AND-node cost of implementing a
// k-leaf cut function, served from the synthesis-program cache.
func synthCost(table uint16, k int) int {
	return cutProg(table, k).cost()
}

// Named returns the transform with the given catalog name.
func Named(name string) (Func, bool) {
	f, ok := byName[name]
	return f, ok
}
