package transform

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aigtimer/internal/aig"
)

func randomAIG(rng *rand.Rand, numPIs, numAnds, numPOs int) *aig.AIG {
	b := aig.NewBuilder(numPIs)
	lits := make([]aig.Lit, 0, numPIs+numAnds)
	for i := 0; i < numPIs; i++ {
		lits = append(lits, b.PI(i))
	}
	for len(lits) < numPIs+numAnds {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		c := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, b.And(a, c))
	}
	for i := 0; i < numPOs; i++ {
		b.AddPO(lits[len(lits)-1-rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0))
	}
	return b.Build().Compact()
}

// checkEquiv asserts functional equivalence of g and h exhaustively.
func checkEquiv(t *testing.T, name string, g, h *aig.AIG) bool {
	t.Helper()
	if !aig.EquivalentExhaustive(g, h) {
		t.Errorf("%s changed function", name)
		return false
	}
	if h.DanglingCount() != 0 {
		t.Errorf("%s left %d dangling nodes", name, h.DanglingCount())
		return false
	}
	return true
}

func TestEveryTransformPreservesFunction(t *testing.T) {
	for _, tr := range Catalog() {
		tr := tr
		t.Run(tr.Name, func(t *testing.T) {
			prop := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				g := randomAIG(rng, 4+rng.Intn(7), 10+rng.Intn(90), 1+rng.Intn(5))
				h := tr.Fn(g, rng)
				return aig.EquivalentExhaustive(g, h) && h.DanglingCount() == 0
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBalanceReducesDepthOfChain(t *testing.T) {
	// A linear AND chain of 8 inputs has 7 levels; balancing yields 3.
	b := aig.NewBuilder(8)
	out := b.PI(0)
	for i := 1; i < 8; i++ {
		out = b.And(out, b.PI(i))
	}
	b.AddPO(out)
	g := b.Build()
	if g.MaxLevel() != 7 {
		t.Fatalf("chain level = %d, want 7", g.MaxLevel())
	}
	rng := rand.New(rand.NewSource(1))
	h := Balance(g, rng)
	if !checkEquiv(t, "balance", g, h) {
		return
	}
	if h.MaxLevel() != 3 {
		t.Errorf("balanced level = %d, want 3", h.MaxLevel())
	}
}

func TestBalanceNeverIncreasesDepth(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAIG(rng, 5+rng.Intn(6), 20+rng.Intn(80), 2)
		h := Balance(g, rng)
		return h.MaxLevel() <= g.MaxLevel()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteReducesRedundantStructure(t *testing.T) {
	// Build f = (a·b) + (a·!b) = a, wastefully (without strash seeing it).
	b := aig.NewBuilder(3)
	x, y := b.PI(0), b.PI(1)
	t0 := b.And(x, y)
	t1 := b.And(x, y.Not())
	f := b.Or(t0, t1) // equals x, but structurally 3 nodes
	g2 := b.And(f, b.PI(2))
	b.AddPO(g2)
	g := b.Build()
	rng := rand.New(rand.NewSource(2))
	h := Rewrite(g, rng)
	if !checkEquiv(t, "rewrite", g, h) {
		return
	}
	if h.NumAnds() >= g.NumAnds() {
		t.Errorf("rewrite did not shrink: %d -> %d ands", g.NumAnds(), h.NumAnds())
	}
}

func TestRewriteNeverIncreasesNodes(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAIG(rng, 4+rng.Intn(6), 15+rng.Intn(80), 2)
		h := Rewrite(g, rng)
		return h.NumAnds() <= g.NumAnds()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRefactorReducesNodes(t *testing.T) {
	// Flat SOP of a function with a compact factored form:
	// f = a·c + a·d + b·c + b·d = (a+b)·(c+d).
	b := aig.NewBuilder(4)
	a, bb, c, d := b.PI(0), b.PI(1), b.PI(2), b.PI(3)
	f := b.OrN(b.And(a, c), b.And(a, d), b.And(bb, c), b.And(bb, d))
	b.AddPO(f)
	g := b.Build()
	rng := rand.New(rand.NewSource(3))
	h := Refactor(g, rng)
	if !checkEquiv(t, "refactor", g, h) {
		return
	}
	if h.NumAnds() >= g.NumAnds() {
		t.Errorf("refactor did not shrink: %d -> %d ands", g.NumAnds(), h.NumAnds())
	}
}

func TestMergeEquivMergesDuplicates(t *testing.T) {
	// Two structurally different but equivalent computations of XOR.
	b := aig.NewBuilder(2)
	x, y := b.PI(0), b.PI(1)
	xor1 := b.Or(b.And(x, y.Not()), b.And(x.Not(), y))
	// XOR via (x+y)·!(x·y)
	xor2 := b.And(b.Or(x, y), b.And(x, y).Not())
	b.AddPO(xor1)
	b.AddPO(xor2)
	g := b.Build()
	rng := rand.New(rand.NewSource(4))
	h := MergeEquiv(g, rng)
	if !checkEquiv(t, "fraig", g, h) {
		return
	}
	if h.NumAnds() >= g.NumAnds() {
		t.Errorf("fraig did not merge: %d -> %d ands", g.NumAnds(), h.NumAnds())
	}
	// Both POs must now share a driver node.
	if h.PO(0).Node() != h.PO(1).Node() {
		t.Errorf("outputs not merged: %v vs %v", h.PO(0), h.PO(1))
	}
}

func TestExpandAddsDiversity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomAIG(rng, 6, 60, 3)
	grew := false
	changed := false
	for i := 0; i < 8; i++ {
		h := Expand(g, rng)
		if h.NumAnds() > g.NumAnds() {
			grew = true
		}
		if h.Hash() != g.Hash() {
			changed = true
		}
	}
	if !changed {
		t.Errorf("expand never changed structure")
	}
	if !grew {
		t.Errorf("expand never grew the AIG (diversity move ineffective)")
	}
}

func TestRecipesCatalog(t *testing.T) {
	rs := Recipes()
	if len(rs) != NumRecipes {
		t.Fatalf("catalog size = %d, want %d", len(rs), NumRecipes)
	}
	names := map[string]bool{}
	for _, r := range rs {
		if names[r.Name] {
			t.Errorf("duplicate recipe name %q", r.Name)
		}
		names[r.Name] = true
		if len(r.Steps) == 0 {
			t.Errorf("recipe %q empty", r.Name)
		}
		for _, s := range r.Steps {
			if _, ok := Named(s); !ok {
				t.Errorf("recipe %q references unknown step %q", r.Name, s)
			}
		}
	}
	// Catalog must be deterministic across calls.
	rs2 := Recipes()
	for i := range rs {
		if rs[i].String() != rs2[i].String() {
			t.Fatalf("catalog not deterministic at %d", i)
		}
	}
}

func TestRecipeApplyPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomAIG(rng, 8, 100, 4)
	for _, r := range Recipes()[:20] {
		h := r.Apply(g, rng)
		if !aig.EquivalentExhaustive(g, h) {
			t.Fatalf("recipe %q changed function", r.Name)
		}
	}
}

func TestRecipeVariety(t *testing.T) {
	// Applying different random recipes must generate many distinct
	// structures — the precondition for the paper's 40k-variant datasets.
	rng := rand.New(rand.NewSource(7))
	g := randomAIG(rng, 8, 120, 4)
	rs := Recipes()
	seen := map[uint64]bool{}
	cur := g
	for i := 0; i < 30; i++ {
		r := rs[rng.Intn(len(rs))]
		cur = r.Apply(cur, rng)
		seen[cur.Hash()] = true
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct AIGs out of 30 recipe applications", len(seen))
	}
}

func TestNamedLookup(t *testing.T) {
	if _, ok := Named("rw"); !ok {
		t.Error("rw missing")
	}
	if _, ok := Named("nonsense"); ok {
		t.Error("phantom transform")
	}
}

func TestConeSavingsSimple(t *testing.T) {
	// n3 = (a·b)·c, with a·b having no other fanout: replacing n3 over
	// leaves {a,b,c} saves both nodes.
	b := aig.NewBuilder(3)
	n1 := b.And(b.PI(0), b.PI(1))
	n3 := b.And(n1, b.PI(2))
	b.AddPO(n3)
	g := b.Build()
	fo := g.FanoutCounts()
	if got := newSavings(g).compute(n3.Node(), []int32{1, 2, 3}, fo); got != 2 {
		t.Errorf("coneSavings = %d, want 2", got)
	}
	// With n1 shared externally, only n3 is saved.
	b2 := aig.NewBuilder(3)
	m1 := b2.And(b2.PI(0), b2.PI(1))
	m3 := b2.And(m1, b2.PI(2))
	b2.AddPO(m3)
	b2.AddPO(m1)
	g2 := b2.Build()
	fo2 := g2.FanoutCounts()
	if got := newSavings(g2).compute(m3.Node(), []int32{1, 2, 3}, fo2); got != 1 {
		t.Errorf("coneSavings shared = %d, want 1", got)
	}
}
