package truth

import (
	"aigtimer/internal/aig"
)

// Factoring turns a sum-of-products cover into a multi-level AND/OR
// expression tree ("quick factoring"): the most frequent literal is
// factored out recursively, i.e. cover = lit·Q + R. The tree is then
// emitted into an AIG builder. This is the resynthesis engine behind the
// refactor transformation and the fallback path of cut rewriting.

// FactorInto synthesizes the cover over the given input literals into the
// builder and returns the output literal. An empty cover yields constant
// false; a cover containing the tautology cube yields constant true.
func FactorInto(b *aig.Builder, inputs []aig.Lit, cv Cover) aig.Lit {
	return factorRec(b, inputs, cv)
}

func factorRec(b *aig.Builder, inputs []aig.Lit, cv Cover) aig.Lit {
	if len(cv) == 0 {
		return aig.ConstFalse
	}
	for _, c := range cv {
		if c.Mask == 0 {
			return aig.ConstTrue
		}
	}
	if len(cv) == 1 {
		return cubeInto(b, inputs, cv[0])
	}
	v, pos, cnt := bestLiteral(cv)
	if cnt <= 1 {
		// No shared literal: emit the plain OR of cubes, balanced.
		terms := make([]aig.Lit, len(cv))
		for i, c := range cv {
			terms[i] = cubeInto(b, inputs, c)
		}
		return orTree(b, terms)
	}
	// Divide: cv = lit·Q + R.
	var q, r Cover
	for _, c := range cv {
		if c.Has(v) && c.Positive(v) == pos {
			q = append(q, c.WithoutLit(v))
		} else {
			r = append(r, c)
		}
	}
	lit := inputs[v].NotIf(!pos)
	qf := factorRec(b, inputs, q)
	out := b.And(lit, qf)
	if len(r) > 0 {
		out = b.Or(out, factorRec(b, inputs, r))
	}
	return out
}

// bestLiteral returns the literal (variable, polarity) occurring in the
// most cubes, along with its count.
func bestLiteral(cv Cover) (v int, pos bool, count int) {
	var cnt [MaxVars][2]int
	for _, c := range cv {
		for x := 0; x < MaxVars; x++ {
			if c.Has(x) {
				if c.Positive(x) {
					cnt[x][1]++
				} else {
					cnt[x][0]++
				}
			}
		}
	}
	count = -1
	for x := 0; x < MaxVars; x++ {
		for p := 0; p < 2; p++ {
			if cnt[x][p] > count {
				count = cnt[x][p]
				v = x
				pos = p == 1
			}
		}
	}
	return v, pos, count
}

// cubeInto emits the AND of a cube's literals as a balanced tree.
func cubeInto(b *aig.Builder, inputs []aig.Lit, c Cube) aig.Lit {
	var lits []aig.Lit
	for v := 0; v < MaxVars; v++ {
		if c.Has(v) {
			lits = append(lits, inputs[v].NotIf(!c.Positive(v)))
		}
	}
	return andTree(b, lits)
}

func andTree(b *aig.Builder, ls []aig.Lit) aig.Lit {
	switch len(ls) {
	case 0:
		return aig.ConstTrue
	case 1:
		return ls[0]
	}
	for len(ls) > 1 {
		var next []aig.Lit
		for i := 0; i+1 < len(ls); i += 2 {
			next = append(next, b.And(ls[i], ls[i+1]))
		}
		if len(ls)%2 == 1 {
			next = append(next, ls[len(ls)-1])
		}
		ls = next
	}
	return ls[0]
}

func orTree(b *aig.Builder, ls []aig.Lit) aig.Lit {
	switch len(ls) {
	case 0:
		return aig.ConstFalse
	case 1:
		return ls[0]
	}
	for len(ls) > 1 {
		var next []aig.Lit
		for i := 0; i+1 < len(ls); i += 2 {
			next = append(next, b.Or(ls[i], ls[i+1]))
		}
		if len(ls)%2 == 1 {
			next = append(next, ls[len(ls)-1])
		}
		ls = next
	}
	return ls[0]
}

// SynthesizeTT builds an implementation of table t over the given inputs
// into the builder, choosing the cheaper of the factored ISOP of t and of
// its complement (measured in a scratch builder, so the choice is
// deterministic and sharing-independent). len(inputs) must equal t.N.
func SynthesizeTT(b *aig.Builder, inputs []aig.Lit, t TT) aig.Lit {
	if len(inputs) != t.N {
		panic("truth: SynthesizeTT: input count mismatch")
	}
	if t.IsZero() {
		return aig.ConstFalse
	}
	if t.IsOne() {
		return aig.ConstTrue
	}
	cvPos := ISOP(t, t)
	cvNeg := ISOP(t.Not(), t.Not())
	costP := standaloneCost(t.N, cvPos)
	costN := standaloneCost(t.N, cvNeg)
	if costN < costP {
		return factorRec(b, inputs, cvNeg).Not()
	}
	return factorRec(b, inputs, cvPos)
}

// standaloneCost counts the AND nodes a cover's factored form needs in
// isolation.
func standaloneCost(n int, cv Cover) int {
	sb := aig.NewBuilder(n)
	ins := make([]aig.Lit, n)
	for i := range ins {
		ins[i] = sb.PI(i)
	}
	factorRec(sb, ins, cv)
	return sb.NumAnds()
}
