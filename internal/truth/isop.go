package truth

import (
	"math/bits"
	"strings"
)

// Cube is a product term over up to MaxVars variables. Variable i appears
// in the cube iff bit i of Mask is set; it appears positively iff bit i of
// Pol is also set, otherwise negatively. The empty cube is the tautology.
type Cube struct {
	Mask, Pol uint32
}

// NumLits returns the number of literals in the cube.
func (c Cube) NumLits() int { return bits.OnesCount32(c.Mask) }

// Has reports whether the cube contains variable v (either polarity).
func (c Cube) Has(v int) bool { return c.Mask>>v&1 == 1 }

// Positive reports whether variable v appears positively. Only meaningful
// when Has(v) is true.
func (c Cube) Positive(v int) bool { return c.Pol>>v&1 == 1 }

// WithLit returns the cube extended with a literal of variable v.
func (c Cube) WithLit(v int, positive bool) Cube {
	c.Mask |= 1 << v
	if positive {
		c.Pol |= 1 << v
	} else {
		c.Pol &^= 1 << v
	}
	return c
}

// WithoutLit returns the cube with variable v removed.
func (c Cube) WithoutLit(v int) Cube {
	c.Mask &^= 1 << v
	c.Pol &^= 1 << v
	return c
}

func (c Cube) String() string {
	if c.Mask == 0 {
		return "1"
	}
	var sb strings.Builder
	for v := 0; v < MaxVars; v++ {
		if !c.Has(v) {
			continue
		}
		if !c.Positive(v) {
			sb.WriteByte('!')
		}
		sb.WriteByte(byte('a' + v))
	}
	return sb.String()
}

// TT returns the truth table of the cube over n variables.
func (c Cube) TT(n int) TT {
	t := Const(n, true)
	for v := 0; v < n; v++ {
		if !c.Has(v) {
			continue
		}
		vt := Var(n, v)
		if !c.Positive(v) {
			vt = vt.Not()
		}
		t = t.And(vt)
	}
	return t
}

// Cover is a sum of cubes.
type Cover []Cube

// TT returns the truth table of the cover over n variables.
func (cv Cover) TT(n int) TT {
	t := New(n)
	for _, c := range cv {
		t = t.Or(c.TT(n))
	}
	return t
}

// NumLits returns the total literal count of the cover.
func (cv Cover) NumLits() int {
	n := 0
	for _, c := range cv {
		n += c.NumLits()
	}
	return n
}

func (cv Cover) String() string {
	if len(cv) == 0 {
		return "0"
	}
	parts := make([]string, len(cv))
	for i, c := range cv {
		parts[i] = c.String()
	}
	return strings.Join(parts, " + ")
}

// ISOP computes an irredundant sum-of-products for any function f with
// on-set containing L and contained in U (L ⊆ f ⊆ U), using the
// Minato-Morreale procedure. For a completely specified function pass
// L = U = f. The returned cover's function g satisfies L ⊆ g ⊆ U.
func ISOP(L, U TT) Cover {
	L.check(U)
	if !L.AndNot(U).IsZero() {
		panic("truth: ISOP: L not contained in U")
	}
	cover, _ := isop(L, U, L.N-1)
	return cover
}

// isop returns (cover, function-of-cover). topVar is the highest variable
// index that may still be in the support.
func isop(L, U TT, topVar int) (Cover, TT) {
	if L.IsZero() {
		return nil, New(L.N)
	}
	if U.IsOne() {
		return Cover{{}}, Const(L.N, true)
	}
	// Find the top variable that L or U actually depends on.
	v := topVar
	for v >= 0 && !L.DependsOn(v) && !U.DependsOn(v) {
		v--
	}
	if v < 0 {
		// L nonzero and U not tautology but no support: impossible since
		// L ⊆ U; L must be 0 or U must be 1 for constant functions.
		panic("truth: isop: inconsistent bounds")
	}
	L0, L1 := L.Cofactor(v, false), L.Cofactor(v, true)
	U0, U1 := U.Cofactor(v, false), U.Cofactor(v, true)

	// Cubes that must contain literal !v: cover L0 minus what U1 allows.
	c0, f0 := isop(L0.AndNot(U1), U0, v-1)
	// Cubes that must contain literal v.
	c1, f1 := isop(L1.AndNot(U0), U1, v-1)
	// The remainder is covered without a v literal.
	Lr := L0.AndNot(f0).Or(L1.AndNot(f1))
	c2, f2 := isop(Lr, U0.And(U1), v-1)

	out := make(Cover, 0, len(c0)+len(c1)+len(c2))
	for _, c := range c0 {
		out = append(out, c.WithLit(v, false))
	}
	for _, c := range c1 {
		out = append(out, c.WithLit(v, true))
	}
	out = append(out, c2...)

	vt := Var(L.N, v)
	fn := vt.Not().And(f0).Or(vt.And(f1)).Or(f2)
	return out, fn
}
