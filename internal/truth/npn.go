package truth

// NPN manipulation of small (up to 4-variable) functions encoded as uint16
// truth tables. Technology mapping matches cut functions against library
// cell functions under input Negation, input Permutation, and output
// Negation; this file provides the transforms and a canonical form.

// Perms4 lists all 24 permutations of 4 elements.
var Perms4 = [24][4]int{
	{0, 1, 2, 3}, {0, 1, 3, 2}, {0, 2, 1, 3}, {0, 2, 3, 1}, {0, 3, 1, 2}, {0, 3, 2, 1},
	{1, 0, 2, 3}, {1, 0, 3, 2}, {1, 2, 0, 3}, {1, 2, 3, 0}, {1, 3, 0, 2}, {1, 3, 2, 0},
	{2, 0, 1, 3}, {2, 0, 3, 1}, {2, 1, 0, 3}, {2, 1, 3, 0}, {2, 3, 0, 1}, {2, 3, 1, 0},
	{3, 0, 1, 2}, {3, 0, 2, 1}, {3, 1, 0, 2}, {3, 1, 2, 0}, {3, 2, 0, 1}, {3, 2, 1, 0},
}

// PermsK returns all permutations of k elements (k ≤ 4) as index slices.
func PermsK(k int) [][]int {
	switch k {
	case 0:
		return [][]int{{}}
	case 1:
		return [][]int{{0}}
	case 2:
		return [][]int{{0, 1}, {1, 0}}
	case 3:
		return [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	case 4:
		out := make([][]int, 24)
		for i := range Perms4 {
			out[i] = Perms4[i][:]
		}
		return out
	}
	panic("truth: PermsK supports k <= 4")
}

// TransformPins rewires a k-variable function f (k ≤ 4): pin j of the
// original function is driven by variable pinVar[j] of the result,
// complemented when bit j of pinInv is set. The returned table g satisfies
//
//	g(x_0..x_{k-1}) = f(y_0..y_{k-1}),  y_j = x_{pinVar[j]} ^ pinInv_j.
func TransformPins(f uint16, k int, pinVar []int, pinInv uint16) uint16 {
	var g uint16
	n := 1 << k
	for m := 0; m < n; m++ {
		mc := 0
		for j := 0; j < k; j++ {
			b := m >> pinVar[j] & 1
			b ^= int(pinInv >> j & 1)
			mc |= b << j
		}
		if f>>mc&1 == 1 {
			g |= 1 << m
		}
	}
	// Replicate to fill 16 bits for k < 4 so comparisons of padded
	// tables work uniformly.
	for sh := n; sh < 16; sh <<= 1 {
		g |= g << sh
	}
	return g
}

// NPNConfig records how a function was transformed into its canonical
// representative.
type NPNConfig struct {
	Perm   [4]int // pin j of the canonical form reads variable Perm[j]
	InInv  uint16 // input complement bits
	OutInv bool   // output complemented
}

// Canon4 returns the NPN-canonical representative of a 4-variable function
// together with the transform that produces it: the minimum uint16 value
// over all input permutations, input complementations, and output
// complementation.
func Canon4(f uint16) (uint16, NPNConfig) {
	best := uint16(0xFFFF)
	var bestCfg NPNConfig
	first := true
	for pi := range Perms4 {
		for inv := uint16(0); inv < 16; inv++ {
			g := TransformPins(f, 4, Perms4[pi][:], inv)
			for out := 0; out < 2; out++ {
				h := g
				if out == 1 {
					h = ^g
				}
				if first || h < best {
					first = false
					best = h
					bestCfg = NPNConfig{Perm: Perms4[pi], InInv: inv, OutInv: out == 1}
				}
			}
		}
	}
	return best, bestCfg
}

// PadTo4 extends a k-variable function (k ≤ 4) to a full 16-bit table that
// ignores the unused high variables.
func PadTo4(f uint16, k int) uint16 {
	n := 1 << k
	mask := uint16(1)<<n - 1
	if n >= 16 {
		return f
	}
	g := f & mask
	for sh := n; sh < 16; sh <<= 1 {
		g |= g << sh
	}
	return g
}
