// Package truth implements truth-table manipulation for small Boolean
// functions: cofactoring, support detection, irredundant sum-of-products
// extraction (Minato-Morreale ISOP), algebraic factoring, NPN canonization
// of 4-input functions, and synthesis of truth tables into AIG structure.
//
// Cut-based rewriting, refactoring and technology mapping all reduce to
// "here is the local function of a cut; produce or match an implementation",
// and this package is that common substrate.
package truth

import (
	"fmt"
	"math/bits"
)

// MaxVars is the largest supported number of variables.
const MaxVars = 16

// TT is a truth table over N variables. Bit m of the table (bit m%64 of
// word m/64) holds the function value on the minterm with variable i equal
// to bit i of m. Tables with fewer than 6 variables still use one word,
// with the value replicated so that bitwise ops remain valid; only the low
// 2^N bits are significant.
type TT struct {
	N int
	W []uint64
}

// Words returns the number of 64-bit words needed for n variables.
func Words(n int) int {
	if n <= 6 {
		return 1
	}
	return 1 << (n - 6)
}

// New returns the constant-false table over n variables.
func New(n int) TT {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("truth: bad variable count %d", n))
	}
	return TT{N: n, W: make([]uint64, Words(n))}
}

// Const returns the constant table (false or true) over n variables.
func Const(n int, v bool) TT {
	t := New(n)
	if v {
		for i := range t.W {
			t.W[i] = ^uint64(0)
		}
		t.maskTop()
	}
	return t
}

// varMasks[i] is the single-word pattern of variable i for i < 6.
var varMasks = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// Var returns the projection table of variable v over n variables.
func Var(n, v int) TT {
	t := New(n)
	VarInto(t.W, n, v)
	return t
}

// VarInto fills w — which must hold Words(n) words — with the projection
// table of variable v over n variables: the allocation-free form of Var
// for callers that manage their own word storage. Every word is fully
// overwritten, and the result is already in the replicated normal form
// maskTop produces (the var masks are periodic within a word).
func VarInto(w []uint64, n, v int) {
	if v < 0 || v >= n {
		panic(fmt.Sprintf("truth: variable %d out of range for %d vars", v, n))
	}
	if v < 6 {
		for i := range w {
			w[i] = varMasks[v]
		}
		return
	}
	period := 1 << (v - 6 + 1)
	half := 1 << (v - 6)
	for i := range w {
		if i%period >= half {
			w[i] = ^uint64(0)
		} else {
			w[i] = 0
		}
	}
}

// maskTop clears the insignificant high bits for tables under 6 variables.
func (t *TT) maskTop() {
	if t.N < 6 {
		mask := (uint64(1) << (1 << t.N)) - 1
		// Keep the low 2^N bits replicated across the word so bitwise
		// operations behave; we normalize by replication.
		v := t.W[0] & mask
		for sh := 1 << t.N; sh < 64; sh <<= 1 {
			v |= v << sh
		}
		t.W[0] = v
	}
}

// Clone returns a deep copy.
func (t TT) Clone() TT {
	return TT{N: t.N, W: append([]uint64(nil), t.W...)}
}

func (t TT) check(o TT) {
	if t.N != o.N {
		panic("truth: mixing tables of different arity")
	}
}

// Not returns the complement.
func (t TT) Not() TT {
	o := New(t.N)
	for i := range t.W {
		o.W[i] = ^t.W[i]
	}
	return o
}

// And returns the conjunction.
func (t TT) And(u TT) TT {
	t.check(u)
	o := New(t.N)
	for i := range t.W {
		o.W[i] = t.W[i] & u.W[i]
	}
	return o
}

// Or returns the disjunction.
func (t TT) Or(u TT) TT {
	t.check(u)
	o := New(t.N)
	for i := range t.W {
		o.W[i] = t.W[i] | u.W[i]
	}
	return o
}

// Xor returns the exclusive-or.
func (t TT) Xor(u TT) TT {
	t.check(u)
	o := New(t.N)
	for i := range t.W {
		o.W[i] = t.W[i] ^ u.W[i]
	}
	return o
}

// AndNot returns t & ~u.
func (t TT) AndNot(u TT) TT {
	t.check(u)
	o := New(t.N)
	for i := range t.W {
		o.W[i] = t.W[i] &^ u.W[i]
	}
	return o
}

// IsZero reports whether the function is constant false.
func (t TT) IsZero() bool {
	if t.N < 6 {
		mask := (uint64(1) << (1 << t.N)) - 1
		return t.W[0]&mask == 0
	}
	for _, w := range t.W {
		if w != 0 {
			return false
		}
	}
	return true
}

// IsOne reports whether the function is constant true.
func (t TT) IsOne() bool {
	if t.N < 6 {
		mask := (uint64(1) << (1 << t.N)) - 1
		return t.W[0]&mask == mask
	}
	for _, w := range t.W {
		if w != ^uint64(0) {
			return false
		}
	}
	return true
}

// Equal reports whether two tables denote the same function.
func (t TT) Equal(u TT) bool {
	if t.N != u.N {
		return false
	}
	if t.N < 6 {
		mask := (uint64(1) << (1 << t.N)) - 1
		return (t.W[0]^u.W[0])&mask == 0
	}
	for i := range t.W {
		if t.W[i] != u.W[i] {
			return false
		}
	}
	return true
}

// CountOnes returns the number of minterms on which the function is true.
func (t TT) CountOnes() int {
	if t.N < 6 {
		mask := (uint64(1) << (1 << t.N)) - 1
		return bits.OnesCount64(t.W[0] & mask)
	}
	n := 0
	for _, w := range t.W {
		n += bits.OnesCount64(w)
	}
	return n
}

// Bit returns the function value on minterm m.
func (t TT) Bit(m int) bool {
	return t.W[m/64]>>(m%64)&1 == 1
}

// SetBit sets the function value on minterm m to true.
func (t *TT) SetBit(m int) {
	t.W[m/64] |= 1 << (m % 64)
	t.maskTop()
}

// Cofactor returns the cofactor with variable v fixed to val. The result
// remains a table over N variables (the cofactor is independent of v).
func (t TT) Cofactor(v int, val bool) TT {
	o := New(t.N)
	if v < 6 {
		sh := uint(1) << v
		m := varMasks[v]
		for i, w := range t.W {
			if val {
				hi := w & m
				o.W[i] = hi | hi>>sh
			} else {
				lo := w &^ m
				o.W[i] = lo | lo<<sh
			}
		}
	} else {
		period := 1 << (v - 6 + 1)
		half := 1 << (v - 6)
		for i := range t.W {
			base := i - i%period
			if val {
				o.W[i] = t.W[base+i%half+half]
			} else {
				o.W[i] = t.W[base+i%half]
			}
		}
	}
	o.maskTop()
	return o
}

// DependsOn reports whether the function depends on variable v.
func (t TT) DependsOn(v int) bool {
	return !t.Cofactor(v, false).Equal(t.Cofactor(v, true))
}

// Support returns the indices of variables the function depends on.
func (t TT) Support() []int {
	var s []int
	for v := 0; v < t.N; v++ {
		if t.DependsOn(v) {
			s = append(s, v)
		}
	}
	return s
}

// Uint16 returns the low 16 bits, the standard encoding for 4-variable
// functions. Panics for tables over more than 4 variables.
func (t TT) Uint16() uint16 {
	if t.N > 4 {
		panic("truth: Uint16 on table with more than 4 vars")
	}
	return uint16(t.W[0])
}

// FromUint16K builds a k-variable table (k ≤ 4) from a 16-bit encoding
// whose low 2^k bits are significant.
func FromUint16K(f uint16, k int) TT {
	if k > 4 {
		panic("truth: FromUint16K: k must be at most 4")
	}
	t := New(k)
	v := uint64(f)
	v |= v << 16
	v |= v << 32
	t.W[0] = v
	t.maskTop()
	return t
}

// FromUint16 builds a 4-variable table from its 16-bit encoding.
func FromUint16(f uint16) TT {
	t := New(4)
	v := uint64(f)
	v |= v << 16
	v |= v << 32
	t.W[0] = v
	return t
}

func (t TT) String() string {
	if t.N <= 4 {
		return fmt.Sprintf("tt%d:%04x", t.N, t.Uint16())
	}
	return fmt.Sprintf("tt%d:%x", t.N, t.W)
}
