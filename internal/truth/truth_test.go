package truth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aigtimer/internal/aig"
)

func randTT(rng *rand.Rand, n int) TT {
	t := New(n)
	for i := range t.W {
		t.W[i] = rng.Uint64()
	}
	t.maskTop()
	return t
}

func TestVarAndCofactor(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for v := 0; v < n; v++ {
			vt := Var(n, v)
			for m := 0; m < 1<<n; m++ {
				want := m>>v&1 == 1
				if vt.Bit(m) != want {
					t.Fatalf("Var(%d,%d) bit %d = %v want %v", n, v, m, vt.Bit(m), want)
				}
			}
			if !vt.Cofactor(v, true).IsOne() {
				t.Errorf("Var(%d,%d) positive cofactor not 1", n, v)
			}
			if !vt.Cofactor(v, false).IsZero() {
				t.Errorf("Var(%d,%d) negative cofactor not 0", n, v)
			}
		}
	}
}

func TestCofactorShannon(t *testing.T) {
	// f = x_v·f1 + !x_v·f0 must reconstruct f, for random tables.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		tt := randTT(rng, n)
		for v := 0; v < n; v++ {
			f0 := tt.Cofactor(v, false)
			f1 := tt.Cofactor(v, true)
			vt := Var(n, v)
			rec := vt.And(f1).Or(vt.Not().And(f0))
			if !rec.Equal(tt) {
				return false
			}
			if f0.DependsOn(v) || f1.DependsOn(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSupport(t *testing.T) {
	n := 5
	f := Var(n, 1).And(Var(n, 3)) // depends on 1 and 3 only
	sup := f.Support()
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 3 {
		t.Fatalf("Support = %v, want [1 3]", sup)
	}
	if !Const(n, true).IsOne() || !Const(n, false).IsZero() {
		t.Fatalf("constants wrong")
	}
	if len(Const(n, true).Support()) != 0 {
		t.Fatalf("constant has support")
	}
}

func TestCountOnes(t *testing.T) {
	if got := Var(4, 0).CountOnes(); got != 8 {
		t.Errorf("Var(4,0).CountOnes = %d want 8", got)
	}
	if got := Const(3, true).CountOnes(); got != 8 {
		t.Errorf("Const(3,true).CountOnes = %d want 8", got)
	}
	if got := Var(7, 6).CountOnes(); got != 64 {
		t.Errorf("Var(7,6).CountOnes = %d want 64", got)
	}
}

func TestISOPCoversFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		tt := randTT(rng, n)
		cv := ISOP(tt, tt)
		return cv.TT(n).Equal(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestISOPWithDontCares(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		on := randTT(rng, n)
		dc := randTT(rng, n)
		L := on.AndNot(dc)
		U := on.Or(dc)
		cv := ISOP(L, U)
		g := cv.TT(n)
		// L ⊆ g ⊆ U
		return L.AndNot(g).IsZero() && g.AndNot(U).IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestISOPConstants(t *testing.T) {
	if cv := ISOP(New(4), New(4)); len(cv) != 0 {
		t.Errorf("ISOP(0) = %v, want empty", cv)
	}
	one := Const(4, true)
	cv := ISOP(one, one)
	if len(cv) != 1 || cv[0].Mask != 0 {
		t.Errorf("ISOP(1) = %v, want tautology cube", cv)
	}
	mustPanicT(t, func() { ISOP(one, New(4)) })
}

func TestCubeOps(t *testing.T) {
	c := Cube{}
	c = c.WithLit(2, true).WithLit(0, false)
	if c.NumLits() != 2 || !c.Has(2) || !c.Positive(2) || !c.Has(0) || c.Positive(0) {
		t.Fatalf("cube ops wrong: %+v", c)
	}
	if got := c.String(); got != "!ac" {
		t.Errorf("String = %q", got)
	}
	c = c.WithoutLit(2)
	if c.NumLits() != 1 || c.Has(2) {
		t.Fatalf("WithoutLit wrong: %+v", c)
	}
	if (Cube{}).String() != "1" {
		t.Errorf("tautology cube string wrong")
	}
}

func TestFactorIntoMatchesCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		tt := randTT(rng, n)
		cv := ISOP(tt, tt)
		b := aig.NewBuilder(n)
		ins := make([]aig.Lit, n)
		for i := range ins {
			ins[i] = b.PI(i)
		}
		out := FactorInto(b, ins, cv)
		b.AddPO(out)
		g := b.Build()
		// Compare against direct truth-table evaluation.
		pats := aig.ExhaustivePatterns(n)
		res := g.Simulate(pats)
		v := res.LitValues(g.PO(0))
		for m := 0; m < 1<<n; m++ {
			got := v[m/64]>>(m%64)&1 == 1
			if got != tt.Bit(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeTT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		tt := randTT(rng, n)
		b := aig.NewBuilder(n)
		ins := make([]aig.Lit, n)
		for i := range ins {
			ins[i] = b.PI(i)
		}
		out := SynthesizeTT(b, ins, tt)
		b.AddPO(out)
		g := b.Build()
		pats := aig.ExhaustivePatterns(n)
		res := g.Simulate(pats)
		v := res.LitValues(g.PO(0))
		for m := 0; m < 1<<n; m++ {
			if (v[m/64]>>(m%64)&1 == 1) != tt.Bit(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeTTConstants(t *testing.T) {
	b := aig.NewBuilder(3)
	ins := []aig.Lit{b.PI(0), b.PI(1), b.PI(2)}
	if got := SynthesizeTT(b, ins, New(3)); got != aig.ConstFalse {
		t.Errorf("const 0 = %v", got)
	}
	if got := SynthesizeTT(b, ins, Const(3, true)); got != aig.ConstTrue {
		t.Errorf("const 1 = %v", got)
	}
	if b.NumAnds() != 0 {
		t.Errorf("constants created nodes")
	}
}

func TestTransformPinsIdentity(t *testing.T) {
	f := func(raw uint16) bool {
		g := TransformPins(raw, 4, []int{0, 1, 2, 3}, 0)
		return g == raw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformPinsInversion(t *testing.T) {
	// AND2 over pins 0,1: f = 0x8 padded. Inverting pin 0 gives !a·b.
	and2 := PadTo4(0x8, 2)
	g := TransformPins(and2, 2, []int{0, 1}, 0b01)
	// !a·b over 2 vars: minterm 2 (a=0,b=1) only -> 0x4 padded.
	want := PadTo4(0x4, 2)
	if g != want {
		t.Fatalf("inverted AND2 = %04x, want %04x", g, want)
	}
	// Swapping pins of a symmetric function is a no-op.
	if TransformPins(and2, 2, []int{1, 0}, 0) != and2 {
		t.Errorf("AND2 not symmetric under swap")
	}
}

func TestTransformPinsPermutation(t *testing.T) {
	// f = a (projection of var 0) over 2 vars: 0b1010 -> 0xA.
	fa := PadTo4(0xA, 2)
	fb := PadTo4(0xC, 2) // projection of var 1
	// Rewire pin 0 to variable 1: g(x0,x1) = f(x1) = x1.
	if got := TransformPins(fa, 2, []int{1, 0}, 0); got != fb {
		t.Fatalf("perm wrong: got %04x want %04x", got, fb)
	}
}

func TestCanon4Invariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		f := uint16(rng.Uint32())
		cf, _ := Canon4(f)
		// Canonical form must be invariant under any NPN transform of f.
		pi := rng.Intn(24)
		inv := uint16(rng.Intn(16))
		g := TransformPins(f, 4, Perms4[pi][:], inv)
		if rng.Intn(2) == 1 {
			g = ^g
		}
		cg, _ := Canon4(g)
		if cf != cg {
			t.Fatalf("NPN class split: f=%04x g=%04x canon %04x vs %04x", f, g, cf, cg)
		}
	}
}

func TestCanon4ConfigReproduces(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		f := uint16(rng.Uint32())
		cf, cfg := Canon4(f)
		g := TransformPins(f, 4, cfg.Perm[:], cfg.InInv)
		if cfg.OutInv {
			g = ^g
		}
		if g != cf {
			t.Fatalf("config does not reproduce canon: f=%04x got %04x want %04x", f, g, cf)
		}
	}
}

func TestUint16RoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		return FromUint16(raw).Uint16() == raw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPermsK(t *testing.T) {
	want := []int{1, 1, 2, 6, 24}
	for k := 0; k <= 4; k++ {
		if got := len(PermsK(k)); got != want[k] {
			t.Errorf("len(PermsK(%d)) = %d want %d", k, got, want[k])
		}
	}
	mustPanicT(t, func() { PermsK(5) })
}

func mustPanicT(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	f()
}
