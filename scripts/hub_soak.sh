#!/usr/bin/env bash
# hub_soak.sh — real-process soak of the sweephub service path.
#
# Builds sweephub, sweepd, and aigopt, then drives one sweep through a
# live hub while the fleet churns:
#
#   - a resident hub (sweephub -listen :0), address parsed from its banner
#   - a steady worker (sweepd -hub)
#   - a crasher worker (sweepd -hub -max-jobs 2) that exits with a job
#     in flight, exercising requeue-on-worker-loss
#   - a late joiner admitted mid-sweep after the crasher dies,
#     exercising warm-start admission
#
# The acceptance bar is the shard contract: the hub run's sweep table
# must be byte-identical to a local (in-process pool) run of the same
# configuration, the coordinator must report at least one lost worker,
# and the hub must shut down cleanly on SIGTERM.
#
# Usage: scripts/hub_soak.sh [logdir]   (default: hub-soak-logs)
set -euo pipefail
cd "$(dirname "$0")/.."

LOGDIR="${1:-hub-soak-logs}"
mkdir -p "$LOGDIR"
BIN="$LOGDIR/bin"
mkdir -p "$BIN"

SUITE=EX08,EX28
FLOW=ground-truth
ITERS=30

echo "== building sweephub, sweepd, aigopt"
go build -o "$BIN/sweephub" ./cmd/sweephub
go build -o "$BIN/sweepd" ./cmd/sweepd
go build -o "$BIN/aigopt" ./cmd/aigopt

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

"$BIN/sweephub" -listen 127.0.0.1:0 -preseed -v >"$LOGDIR/hub.log" 2>&1 &
HUB_PID=$!
PIDS+=("$HUB_PID")

ADDR=
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^sweephub listening on //p' "$LOGDIR/hub.log")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "FAIL: hub never printed its listening banner" >&2
  exit 1
fi
echo "== hub listening on $ADDR"

"$BIN/sweepd" -hub "$ADDR" -name steady -v >"$LOGDIR/worker-steady.log" 2>&1 &
PIDS+=("$!")
"$BIN/sweepd" -hub "$ADDR" -name crasher -max-jobs 2 -v >"$LOGDIR/worker-crasher.log" 2>&1 &
CRASH_PID=$!

echo "== local reference sweep"
"$BIN/aigopt" -suite "$SUITE" -flow "$FLOW" -iters "$ITERS" -no-autotune >"$LOGDIR/local.txt"

echo "== hub sweep with fleet churn"
"$BIN/aigopt" -suite "$SUITE" -flow "$FLOW" -iters "$ITERS" -no-autotune -hub "$ADDR" \
  >"$LOGDIR/hub-run.txt" 2>"$LOGDIR/client.log" &
CLIENT_PID=$!

# The crasher exits (code 3) after starting its third job. Admit the
# late joiner the moment it is gone, while its job is being requeued.
set +e
wait "$CRASH_PID"
CRASH_CODE=$?
set -e
echo "== crasher exited with code $CRASH_CODE (want 3: -max-jobs fired mid-sweep)"
if [ "$CRASH_CODE" -ne 3 ]; then
  echo "FAIL: crasher did not exit via the -max-jobs crash knob" >&2
  exit 1
fi
"$BIN/sweepd" -hub "$ADDR" -name late-joiner -v >"$LOGDIR/worker-late.log" 2>&1 &
PIDS+=("$!")

set +e
wait "$CLIENT_PID"
CLIENT_CODE=$?
set -e
if [ "$CLIENT_CODE" -ne 0 ]; then
  echo "FAIL: hub client exited with code $CLIENT_CODE" >&2
  cat "$LOGDIR/client.log" >&2
  exit 1
fi

# Byte-identity: the sweep tables (every line printFront indents by two
# spaces) must match exactly; timings and transfer stats are allowed to
# differ, table values are not.
grep -E '^  ' "$LOGDIR/local.txt" >"$LOGDIR/local.table"
grep -E '^  ' "$LOGDIR/hub-run.txt" >"$LOGDIR/hub-run.table"
if ! diff -u "$LOGDIR/local.table" "$LOGDIR/hub-run.table"; then
  echo "FAIL: hub sweep table differs from the local reference" >&2
  exit 1
fi
echo "== sweep tables byte-identical ($(wc -l <"$LOGDIR/local.table") lines)"

LOST=$(sed -n 's/.*workers lost \([0-9]*\).*/\1/p' "$LOGDIR/hub-run.txt")
if [ -z "$LOST" ] || [ "$LOST" -lt 1 ]; then
  echo "FAIL: coordinator reported 'workers lost ${LOST:-<none>}', want >= 1" >&2
  exit 1
fi
echo "== coordinator absorbed $LOST lost worker(s)"

if ! grep -q "sweepd registered with hub" "$LOGDIR/worker-late.log"; then
  echo "FAIL: late joiner never registered with the hub" >&2
  exit 1
fi
echo "== late joiner registered"

kill -TERM "$HUB_PID"
set +e
wait "$HUB_PID"
HUB_CODE=$?
set -e
if [ "$HUB_CODE" -ne 0 ]; then
  echo "FAIL: hub exited with code $HUB_CODE on SIGTERM, want clean shutdown" >&2
  exit 1
fi
echo "== hub shut down cleanly"
echo "PASS: hub soak complete; logs in $LOGDIR"
