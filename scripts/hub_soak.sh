#!/usr/bin/env bash
# hub_soak.sh — real-process soak of the sweephub service path.
#
# Builds sweephub, sweepd, and aigopt, then drives two overlapping
# sweeps through one live hub (-max-sessions 2: both submissions run
# concurrently, each over a partition of the fleet) while that fleet
# churns:
#
#   - a resident hub (sweephub -listen :0), address parsed from its banner
#   - a steady worker (sweepd -hub)
#   - a crasher worker (sweepd -hub -max-jobs 2) that exits with a job
#     in flight, exercising requeue-on-worker-loss under a split fleet
#   - a late joiner admitted mid-sweep after the crasher dies,
#     exercising warm-start admission and partition rebalancing
#
# The acceptance bar is the shard contract: each client's sweep table
# must be byte-identical to a local (in-process pool) run of the same
# configuration — whatever the partition plan did — the coordinators
# must report at least one lost worker between them, and the hub must
# shut down cleanly on SIGTERM.
#
# Usage: scripts/hub_soak.sh [logdir]   (default: hub-soak-logs)
set -euo pipefail
cd "$(dirname "$0")/.."

LOGDIR="${1:-hub-soak-logs}"
mkdir -p "$LOGDIR"
BIN="$LOGDIR/bin"
mkdir -p "$BIN"

SUITE=EX08,EX28
FLOW=ground-truth
ITERS1=30
ITERS2=22 # distinct grid: client 2 is a different submission, not a rerun

echo "== building sweephub, sweepd, aigopt"
go build -o "$BIN/sweephub" ./cmd/sweephub
go build -o "$BIN/sweepd" ./cmd/sweepd
go build -o "$BIN/aigopt" ./cmd/aigopt

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

"$BIN/sweephub" -listen 127.0.0.1:0 -max-sessions 2 -preseed -v >"$LOGDIR/hub.log" 2>&1 &
HUB_PID=$!
PIDS+=("$HUB_PID")

ADDR=
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^sweephub listening on //p' "$LOGDIR/hub.log")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "FAIL: hub never printed its listening banner" >&2
  exit 1
fi
echo "== hub listening on $ADDR"

"$BIN/sweepd" -hub "$ADDR" -name steady -v >"$LOGDIR/worker-steady.log" 2>&1 &
PIDS+=("$!")
"$BIN/sweepd" -hub "$ADDR" -name crasher -max-jobs 2 -v >"$LOGDIR/worker-crasher.log" 2>&1 &
CRASH_PID=$!

echo "== local reference sweeps"
"$BIN/aigopt" -suite "$SUITE" -flow "$FLOW" -iters "$ITERS1" -no-autotune >"$LOGDIR/local-1.txt"
"$BIN/aigopt" -suite "$SUITE" -flow "$FLOW" -iters "$ITERS2" -no-autotune >"$LOGDIR/local-2.txt"

echo "== two overlapping hub sweeps with fleet churn"
"$BIN/aigopt" -suite "$SUITE" -flow "$FLOW" -iters "$ITERS1" -no-autotune -hub "$ADDR" \
  >"$LOGDIR/hub-run-1.txt" 2>"$LOGDIR/client-1.log" &
CLIENT1_PID=$!
"$BIN/aigopt" -suite "$SUITE" -flow "$FLOW" -iters "$ITERS2" -no-autotune -hub "$ADDR" \
  >"$LOGDIR/hub-run-2.txt" 2>"$LOGDIR/client-2.log" &
CLIENT2_PID=$!

# The crasher exits (code 3) after starting its third job. Admit the
# late joiner the moment it is gone, while its job is being requeued.
set +e
wait "$CRASH_PID"
CRASH_CODE=$?
set -e
echo "== crasher exited with code $CRASH_CODE (want 3: -max-jobs fired mid-sweep)"
if [ "$CRASH_CODE" -ne 3 ]; then
  echo "FAIL: crasher did not exit via the -max-jobs crash knob" >&2
  exit 1
fi
"$BIN/sweepd" -hub "$ADDR" -name late-joiner -v >"$LOGDIR/worker-late.log" 2>&1 &
PIDS+=("$!")

for client in 1 2; do
  eval "pid=\$CLIENT${client}_PID"
  set +e
  wait "$pid"
  code=$?
  set -e
  if [ "$code" -ne 0 ]; then
    echo "FAIL: hub client $client exited with code $code" >&2
    cat "$LOGDIR/client-$client.log" >&2
    exit 1
  fi
done

# Byte-identity: each client's sweep table (every line printFront
# indents by two spaces) must match its local reference exactly;
# timings and transfer stats are allowed to differ, table values are
# not.
for client in 1 2; do
  grep -E '^  ' "$LOGDIR/local-$client.txt" >"$LOGDIR/local-$client.table"
  grep -E '^  ' "$LOGDIR/hub-run-$client.txt" >"$LOGDIR/hub-run-$client.table"
  if ! diff -u "$LOGDIR/local-$client.table" "$LOGDIR/hub-run-$client.table"; then
    echo "FAIL: client $client sweep table differs from its local reference" >&2
    exit 1
  fi
  echo "== client $client sweep table byte-identical ($(wc -l <"$LOGDIR/local-$client.table") lines)"
done

# Whether the crash landed in client 1's or client 2's partition is a
# scheduling accident; between them the coordinators must have seen it.
LOST1=$(sed -n 's/.*workers lost \([0-9]*\).*/\1/p' "$LOGDIR/hub-run-1.txt")
LOST2=$(sed -n 's/.*workers lost \([0-9]*\).*/\1/p' "$LOGDIR/hub-run-2.txt")
if [ $(( ${LOST1:-0} + ${LOST2:-0} )) -lt 1 ]; then
  echo "FAIL: coordinators reported 'workers lost ${LOST1:-<none>}/${LOST2:-<none>}', want >= 1 between them" >&2
  exit 1
fi
echo "== coordinators absorbed ${LOST1:-0}+${LOST2:-0} lost worker(s)"

# Concurrency is timing-dependent in a real-process soak, so report it
# rather than gate on it: a "2 active" admission line means the two
# submissions genuinely overlapped.
if grep -q '2 active' "$LOGDIR/hub.log"; then
  echo "== sessions overlapped (hub admitted a submission alongside a running one)"
else
  echo "== note: sessions did not overlap this run (fleet/scheduling timing)"
fi

if ! grep -q "sweepd registered with hub" "$LOGDIR/worker-late.log"; then
  echo "FAIL: late joiner never registered with the hub" >&2
  exit 1
fi
echo "== late joiner registered"

kill -TERM "$HUB_PID"
set +e
wait "$HUB_PID"
HUB_CODE=$?
set -e
if [ "$HUB_CODE" -ne 0 ]; then
  echo "FAIL: hub exited with code $HUB_CODE on SIGTERM, want clean shutdown" >&2
  exit 1
fi
echo "== hub shut down cleanly"
echo "PASS: hub soak complete; logs in $LOGDIR"
